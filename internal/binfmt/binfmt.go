// Package binfmt defines ZELF, the on-disk container format for ZVM-32
// programs and shared libraries. A ZELF file carries an entry point, a set
// of segments (text is read-execute, data is read-write), an export table
// (for libraries), an import table (resolved by the loader into GOT slots
// in the data segment), and the names of required libraries. The format
// fills the role ELF plays in the paper: it is what the rewriter consumes
// and produces, and file-size overhead is measured on its serialized form.
package binfmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Magic identifies a ZELF file.
var Magic = [4]byte{'Z', 'E', 'L', 'F'}

// Version is the current format version.
const Version uint16 = 1

// Type distinguishes executables from shared libraries.
type Type uint8

// Binary types.
const (
	Exec Type = iota + 1 // executable: Entry is the start address
	Lib                  // shared library: entered only via exports
)

// SegKind is the kind (and implied permissions) of a segment.
type SegKind uint8

// Segment kinds.
const (
	Text SegKind = iota + 1 // read + execute
	Data                    // read + write
)

// Unmarshal errors.
var (
	ErrBadMagic   = errors.New("binfmt: bad magic")
	ErrBadVersion = errors.New("binfmt: unsupported version")
	ErrCorrupt    = errors.New("binfmt: corrupt file")
)

// Segment is a contiguous region mapped at a fixed virtual address.
type Segment struct {
	Kind  SegKind
	VAddr uint32
	Data  []byte
}

// End returns the first address past the segment.
func (s *Segment) End() uint32 { return s.VAddr + uint32(len(s.Data)) }

// Contains reports whether addr falls inside the segment.
func (s *Segment) Contains(addr uint32) bool {
	return addr >= s.VAddr && addr < s.End()
}

// Symbol names an address, used for exports and optional debug symbols.
type Symbol struct {
	Name string
	Addr uint32
}

// Import names a symbol provided by another binary. The loader writes the
// resolved address into the 4-byte GOT slot at GotAddr (which must lie in
// a data segment); code reaches the import by loading that slot and
// branching indirectly.
type Import struct {
	Name    string
	GotAddr uint32
}

// Binary is an in-memory ZELF image.
type Binary struct {
	Type     Type
	Entry    uint32 // start address (Exec only)
	Segments []Segment
	Exports  []Symbol // addresses callable from other binaries
	Imports  []Import
	Libs     []string // names of required libraries, resolution order
}

// Text returns the first text segment, or nil.
func (b *Binary) Text() *Segment { return b.findSeg(Text) }

// DataSeg returns the first data segment, or nil.
func (b *Binary) DataSeg() *Segment { return b.findSeg(Data) }

func (b *Binary) findSeg(k SegKind) *Segment {
	for i := range b.Segments {
		if b.Segments[i].Kind == k {
			return &b.Segments[i]
		}
	}
	return nil
}

// SegmentAt returns the segment containing addr, or nil.
func (b *Binary) SegmentAt(addr uint32) *Segment {
	for i := range b.Segments {
		if b.Segments[i].Contains(addr) {
			return &b.Segments[i]
		}
	}
	return nil
}

// ReadWord reads the little-endian 32-bit word at addr, if addr..addr+4
// lies within one segment.
func (b *Binary) ReadWord(addr uint32) (uint32, bool) {
	seg := b.SegmentAt(addr)
	if seg == nil || addr+4 > seg.End() || addr+4 < addr {
		return 0, false
	}
	off := addr - seg.VAddr
	return binary.LittleEndian.Uint32(seg.Data[off : off+4]), true
}

// ExportAddr returns the address of the named export.
func (b *Binary) ExportAddr(name string) (uint32, bool) {
	for _, e := range b.Exports {
		if e.Name == name {
			return e.Addr, true
		}
	}
	return 0, false
}

// Validate checks structural invariants: a text segment exists, segments
// do not overlap, GOT slots lie in data segments, exports lie in some
// segment, and (for executables) the entry lies in text.
func (b *Binary) Validate() error {
	if b.Type != Exec && b.Type != Lib {
		return fmt.Errorf("binfmt: bad binary type %d", b.Type)
	}
	text := b.Text()
	if text == nil {
		return errors.New("binfmt: no text segment")
	}
	segs := make([]Segment, len(b.Segments))
	copy(segs, b.Segments)
	sort.Slice(segs, func(i, j int) bool { return segs[i].VAddr < segs[j].VAddr })
	for i := range segs {
		// A segment whose end wraps the 32-bit address space would make
		// End() lie to every range check downstream.
		if uint64(segs[i].VAddr)+uint64(len(segs[i].Data)) > 1<<32 {
			return fmt.Errorf("binfmt: segment at %#x overflows the address space", segs[i].VAddr)
		}
		if i > 0 && segs[i-1].End() > segs[i].VAddr {
			return fmt.Errorf("binfmt: segments overlap at %#x", segs[i].VAddr)
		}
	}
	if b.Type == Exec && !text.Contains(b.Entry) {
		return fmt.Errorf("binfmt: entry %#x outside text", b.Entry)
	}
	for _, im := range b.Imports {
		seg := b.SegmentAt(im.GotAddr)
		if seg == nil || seg.Kind != Data || im.GotAddr+4 > seg.End() {
			return fmt.Errorf("binfmt: import %q GOT slot %#x not in data", im.Name, im.GotAddr)
		}
	}
	for _, e := range b.Exports {
		if b.SegmentAt(e.Addr) == nil {
			return fmt.Errorf("binfmt: export %q addr %#x unmapped", e.Name, e.Addr)
		}
	}
	return nil
}

// FileSize returns the size in bytes of the serialized binary. This is
// the "file size" metric of the CGC evaluation.
func (b *Binary) FileSize() int {
	data, err := b.Marshal()
	if err != nil {
		return 0
	}
	return len(data)
}

// Clone returns a deep copy of the binary.
func (b *Binary) Clone() *Binary {
	nb := &Binary{Type: b.Type, Entry: b.Entry}
	nb.Segments = make([]Segment, len(b.Segments))
	for i, s := range b.Segments {
		nb.Segments[i] = Segment{Kind: s.Kind, VAddr: s.VAddr, Data: append([]byte(nil), s.Data...)}
	}
	nb.Exports = append([]Symbol(nil), b.Exports...)
	nb.Imports = append([]Import(nil), b.Imports...)
	nb.Libs = append([]string(nil), b.Libs...)
	return nb
}

// Marshal serializes the binary to its on-disk representation.
func (b *Binary) Marshal() ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(Magic[:])
	w32 := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w16 := func(v uint16) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	wstr := func(s string) error {
		if len(s) > 0xFFFF {
			return fmt.Errorf("binfmt: string too long (%d bytes)", len(s))
		}
		w16(uint16(len(s)))
		buf.WriteString(s)
		return nil
	}
	w16(Version)
	buf.WriteByte(byte(b.Type))
	buf.WriteByte(0)
	w32(b.Entry)
	for _, c := range []struct {
		what string
		n    int
	}{
		{"segments", len(b.Segments)},
		{"exports", len(b.Exports)},
		{"imports", len(b.Imports)},
		{"libs", len(b.Libs)},
	} {
		if c.n > 0xFFFF {
			return nil, fmt.Errorf("binfmt: too many %s (%d)", c.what, c.n)
		}
	}
	w16(uint16(len(b.Segments)))
	w16(uint16(len(b.Exports)))
	w16(uint16(len(b.Imports)))
	w16(uint16(len(b.Libs)))
	for _, s := range b.Segments {
		buf.WriteByte(byte(s.Kind))
		buf.Write([]byte{0, 0, 0})
		w32(s.VAddr)
		w32(uint32(len(s.Data)))
		buf.Write(s.Data)
	}
	for _, e := range b.Exports {
		if err := wstr(e.Name); err != nil {
			return nil, err
		}
		w32(e.Addr)
	}
	for _, im := range b.Imports {
		if err := wstr(im.Name); err != nil {
			return nil, err
		}
		w32(im.GotAddr)
	}
	for _, l := range b.Libs {
		if err := wstr(l); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Unmarshal parses a serialized ZELF image.
func Unmarshal(data []byte) (*Binary, error) {
	r := &reader{data: data}
	var magic [4]byte
	if err := r.bytes(magic[:]); err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	ver, err := r.u16()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	b := &Binary{}
	t, err := r.u8()
	if err != nil {
		return nil, err
	}
	b.Type = Type(t)
	if _, err := r.u8(); err != nil { // pad
		return nil, err
	}
	if b.Entry, err = r.u32(); err != nil {
		return nil, err
	}
	nSeg, err := r.u16()
	if err != nil {
		return nil, err
	}
	nExp, err := r.u16()
	if err != nil {
		return nil, err
	}
	nImp, err := r.u16()
	if err != nil {
		return nil, err
	}
	nLib, err := r.u16()
	if err != nil {
		return nil, err
	}
	b.Segments = make([]Segment, 0, nSeg)
	for i := 0; i < int(nSeg); i++ {
		k, err := r.u8()
		if err != nil {
			return nil, err
		}
		var pad [3]byte
		if err := r.bytes(pad[:]); err != nil {
			return nil, err
		}
		vaddr, err := r.u32()
		if err != nil {
			return nil, err
		}
		size, err := r.u32()
		if err != nil {
			return nil, err
		}
		if size > uint32(len(r.data)) {
			return nil, ErrCorrupt
		}
		seg := Segment{Kind: SegKind(k), VAddr: vaddr, Data: make([]byte, size)}
		if err := r.bytes(seg.Data); err != nil {
			return nil, err
		}
		b.Segments = append(b.Segments, seg)
	}
	for i := 0; i < int(nExp); i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		addr, err := r.u32()
		if err != nil {
			return nil, err
		}
		b.Exports = append(b.Exports, Symbol{Name: name, Addr: addr})
	}
	for i := 0; i < int(nImp); i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		addr, err := r.u32()
		if err != nil {
			return nil, err
		}
		b.Imports = append(b.Imports, Import{Name: name, GotAddr: addr})
	}
	for i := 0; i < int(nLib); i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		b.Libs = append(b.Libs, name)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return b, nil
}

// reader is a bounds-checked little-endian cursor over a byte slice.
type reader struct {
	data []byte
	off  int
}

func (r *reader) bytes(dst []byte) error {
	if r.off+len(dst) > len(r.data) {
		return ErrCorrupt
	}
	copy(dst, r.data[r.off:])
	r.off += len(dst)
	return nil
}

func (r *reader) u8() (uint8, error) {
	if r.off+1 > len(r.data) {
		return 0, ErrCorrupt
	}
	v := r.data[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if r.off+2 > len(r.data) {
		return 0, ErrCorrupt
	}
	v := binary.LittleEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, ErrCorrupt
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if r.off+int(n) > len(r.data) {
		return "", ErrCorrupt
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}
