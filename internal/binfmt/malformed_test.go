package binfmt

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// twoSeg returns a minimal two-segment executable whose serialized
// layout is known: a 20-byte header, then segment records of
// kind(1)+pad(3)+vaddr(4)+size(4)+data each.
func twoSeg() *Binary {
	return &Binary{
		Type:  Exec,
		Entry: 0x1000,
		Segments: []Segment{
			{Kind: Text, VAddr: 0x1000, Data: []byte{0x90, 0x90, 0xc3}},
			{Kind: Data, VAddr: 0x2000, Data: make([]byte, 16)},
		},
	}
}

// TestUnmarshalEveryTruncation feeds every strict prefix of a valid
// image to Unmarshal: each one must return a typed error — the parse
// consumes the whole image, so no prefix can be silently accepted —
// and none may panic.
func TestUnmarshalEveryTruncation(t *testing.T) {
	good, err := twoSeg().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(good); cut++ {
		b, err := Unmarshal(good[:cut])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed successfully: %+v", cut, len(good), b)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) {
			t.Fatalf("prefix of %d bytes: untyped error %v", cut, err)
		}
	}
}

// segVAddrOffset returns the byte offset of segment i's vaddr field in
// a serialized twoSeg image.
func segVAddrOffset(b *Binary, i int) int {
	off := 20 // magic+version+type+pad+entry+4 counts
	for s := 0; s < i; s++ {
		off += 1 + 3 + 4 + 4 + len(b.Segments[s].Data)
	}
	return off + 1 + 3
}

// TestUnmarshalOverlappingSegments patches a serialized image so the
// data segment overlaps text: the parser must reject it as corrupt,
// not hand downstream phases an inconsistent address map.
func TestUnmarshalOverlappingSegments(t *testing.T) {
	src := twoSeg()
	good, err := src.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, overlap := range []uint32{0x1000, 0x1001, 0x1002} {
		img := append([]byte(nil), good...)
		off := segVAddrOffset(src, 1)
		img[off] = byte(overlap)
		img[off+1] = byte(overlap >> 8)
		img[off+2] = byte(overlap >> 16)
		img[off+3] = byte(overlap >> 24)
		_, err := Unmarshal(img)
		if err == nil {
			t.Fatalf("overlap at %#x parsed successfully", overlap)
		}
		if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "overlap") {
			t.Fatalf("overlap at %#x: want corrupt/overlap error, got %v", overlap, err)
		}
	}
}

// TestZeroLengthText covers the degenerate text-segment sizes: an
// executable with an empty text segment can contain no entry point and
// must fail validation typed; a library with empty text round-trips
// (nothing to enter, nothing to export) without panicking.
func TestZeroLengthText(t *testing.T) {
	exe := &Binary{
		Type:  Exec,
		Entry: 0x1000,
		Segments: []Segment{
			{Kind: Text, VAddr: 0x1000, Data: nil},
			{Kind: Data, VAddr: 0x2000, Data: make([]byte, 8)},
		},
	}
	if err := exe.Validate(); err == nil {
		t.Fatal("executable with zero-length text validated")
	}
	if _, err := exe.Marshal(); err == nil {
		t.Fatal("executable with zero-length text marshaled")
	}

	lib := &Binary{
		Type: Lib,
		Segments: []Segment{
			{Kind: Text, VAddr: 0x1000, Data: nil},
		},
	}
	img, err := lib.Marshal()
	if err != nil {
		t.Fatalf("empty-text library failed to marshal: %v", err)
	}
	back, err := Unmarshal(img)
	if err != nil {
		t.Fatalf("empty-text library failed to parse: %v", err)
	}
	if back.Text() == nil || len(back.Text().Data) != 0 {
		t.Fatalf("empty text did not round-trip: %+v", back.Text())
	}
}

// TestUnmarshalHeaderFlipsNeverPanic flips every header byte through a
// spread of values: whatever parses must re-marshal, and nothing may
// panic — the invariant the chaos layer's SectionCorrupt fault depends
// on.
func TestUnmarshalHeaderFlipsNeverPanic(t *testing.T) {
	good, err := twoSeg().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < 20; off++ {
		for _, mask := range []byte{0x01, 0x80, 0xFF} {
			img := append([]byte(nil), good...)
			img[off] ^= mask
			b, err := Unmarshal(img)
			if err != nil {
				continue
			}
			if _, merr := b.Marshal(); merr != nil {
				t.Fatalf("header flip at %d^%#x: parsed but does not re-marshal: %v", off, mask, merr)
			}
		}
	}
}

// TestValidateSegmentAddressOverflow: a segment whose VAddr+len wraps
// the 32-bit space must be rejected — End() would otherwise lie to
// every downstream range check.
func TestValidateSegmentAddressOverflow(t *testing.T) {
	b := &Binary{
		Type:  Exec,
		Entry: 0xFFFFFFF0,
		Segments: []Segment{
			{Kind: Text, VAddr: 0xFFFFFFF0, Data: make([]byte, 32)},
		},
	}
	err := b.Validate()
	if err == nil {
		t.Fatal("wrapping segment validated")
	}
	if !strings.Contains(err.Error(), "overflows") {
		t.Fatalf("want overflow error, got %v", err)
	}
}

// TestMarshalCountGuards: tables whose lengths exceed the format's
// 16-bit count fields must be rejected at Marshal time instead of
// silently truncating the counts.
func TestMarshalCountGuards(t *testing.T) {
	base := twoSeg()
	t.Run("libs", func(t *testing.T) {
		b := base.Clone()
		b.Libs = make([]string, 0x10000)
		_, err := b.Marshal()
		if err == nil || !strings.Contains(err.Error(), "too many libs") {
			t.Fatalf("want too-many-libs error, got %v", err)
		}
	})
	t.Run("exports", func(t *testing.T) {
		b := base.Clone()
		b.Exports = make([]Symbol, 0x10000)
		for i := range b.Exports {
			b.Exports[i] = Symbol{Name: fmt.Sprintf("e%d", i), Addr: 0x1000}
		}
		_, err := b.Marshal()
		if err == nil || !strings.Contains(err.Error(), "too many exports") {
			t.Fatalf("want too-many-exports error, got %v", err)
		}
	})
}

// TestTruncationPreservesInput: Unmarshal must never mutate the bytes
// it is handed, even on error paths.
func TestTruncationPreservesInput(t *testing.T) {
	good, err := twoSeg().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), good...)
	for cut := 0; cut <= len(good); cut++ {
		_, _ = Unmarshal(good[:cut])
	}
	if !bytes.Equal(good, snapshot) {
		t.Fatal("Unmarshal mutated its input")
	}
}
