// Package irdb implements the Intermediate Representation Database that
// mediates communication between the rewriting pipeline's phases, in the
// role the paper assigns to its SQL-based IRDB: disassembly and analysis
// write facts about the original program, transformation reads and
// rewrites them, and reassembly reads the final IR. The engine is a small
// in-memory relational store with typed schemas, auto-increment primary
// keys, secondary indexes, and a compact SQL subset (see package file
// sql.go) for ad-hoc queries by tools.
package irdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ColType is the type of a column.
type ColType uint8

// Column types.
const (
	Int   ColType = iota + 1 // int64
	Text                     // string
	Bytes                    // []byte
	Bool                     // bool
)

// Col describes one column of a table.
type Col struct {
	Name string
	Type ColType
}

// Schema describes a table. Every table has an implicit auto-increment
// primary key column "id" of type Int; it must not be redeclared.
type Schema struct {
	Name string
	Cols []Col
}

// Row is a single record keyed by column name. The "id" key is present
// on rows returned from the database.
type Row map[string]any

// Errors returned by database operations.
var (
	ErrNoTable   = errors.New("irdb: no such table")
	ErrNoRow     = errors.New("irdb: no such row")
	ErrBadColumn = errors.New("irdb: no such column")
	ErrBadType   = errors.New("irdb: value has wrong type for column")
	ErrExists    = errors.New("irdb: table already exists")
)

// DB is an in-memory relational database. It is safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
}

type table struct {
	schema  Schema
	cols    map[string]ColType
	rows    map[int64]Row
	order   []int64 // insertion order of live rows
	nextID  int64
	indexes map[string]map[any][]int64 // column -> value -> ids
}

// New creates an empty database.
func New() *DB {
	return &DB{tables: make(map[string]*table)}
}

// CreateTable registers a new table.
func (db *DB) CreateTable(s Schema) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[s.Name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, s.Name)
	}
	cols := map[string]ColType{"id": Int}
	for _, c := range s.Cols {
		if c.Name == "id" {
			return fmt.Errorf("irdb: table %s redeclares implicit column id", s.Name)
		}
		if _, dup := cols[c.Name]; dup {
			return fmt.Errorf("irdb: table %s duplicates column %s", s.Name, c.Name)
		}
		if c.Type < Int || c.Type > Bool {
			return fmt.Errorf("irdb: table %s column %s has bad type", s.Name, c.Name)
		}
		cols[c.Name] = c.Type
	}
	db.tables[s.Name] = &table{
		schema:  s,
		cols:    cols,
		rows:    make(map[int64]Row),
		nextID:  1,
		indexes: make(map[string]map[any][]int64),
	}
	return nil
}

// CreateIndex builds (and maintains) a secondary index on col.
func (db *DB) CreateIndex(tableName, col string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	if _, ok := t.cols[col]; !ok {
		return fmt.Errorf("%w: %s.%s", ErrBadColumn, tableName, col)
	}
	idx := make(map[any][]int64)
	for _, id := range t.order {
		v := t.rows[id][col]
		idx[v] = append(idx[v], id)
	}
	t.indexes[col] = idx
	return nil
}

// Tables returns the names of all tables, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// checkVal normalizes a value to the column's canonical Go type.
func checkVal(t ColType, v any) (any, error) {
	switch t {
	case Int:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case int32:
			return int64(x), nil
		case uint32:
			return int64(x), nil
		case uint64:
			return int64(x), nil
		}
	case Text:
		if s, ok := v.(string); ok {
			return s, nil
		}
	case Bytes:
		if b, ok := v.([]byte); ok {
			return append([]byte(nil), b...), nil
		}
	case Bool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	}
	return nil, fmt.Errorf("%w: %T", ErrBadType, v)
}

// zero returns the zero value for a column type.
func zero(t ColType) any {
	switch t {
	case Int:
		return int64(0)
	case Text:
		return ""
	case Bytes:
		return []byte(nil)
	case Bool:
		return false
	}
	return nil
}

// Insert adds a row and returns its id. Missing columns get zero values;
// unknown columns are an error.
func (db *DB) Insert(tableName string, r Row) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	stored := Row{}
	for name, v := range r {
		ct, ok := t.cols[name]
		if !ok {
			return 0, fmt.Errorf("%w: %s.%s", ErrBadColumn, tableName, name)
		}
		if name == "id" {
			return 0, errors.New("irdb: cannot insert explicit id")
		}
		nv, err := checkVal(ct, v)
		if err != nil {
			return 0, fmt.Errorf("column %s: %w", name, err)
		}
		stored[name] = nv
	}
	for _, c := range t.schema.Cols {
		if _, ok := stored[c.Name]; !ok {
			stored[c.Name] = zero(c.Type)
		}
	}
	id := t.nextID
	t.nextID++
	stored["id"] = id
	t.rows[id] = stored
	t.order = append(t.order, id)
	for col, idx := range t.indexes {
		idx[stored[col]] = append(idx[stored[col]], id)
	}
	return id, nil
}

// Get returns a copy of the row with the given id.
func (db *DB) Get(tableName string, id int64) (Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	r, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s id %d", ErrNoRow, tableName, id)
	}
	return copyRow(r), nil
}

func copyRow(r Row) Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Update overwrites the given columns of row id.
func (db *DB) Update(tableName string, id int64, changes Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	r, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("%w: %s id %d", ErrNoRow, tableName, id)
	}
	for name, v := range changes {
		if name == "id" {
			return errors.New("irdb: cannot update id")
		}
		ct, ok := t.cols[name]
		if !ok {
			return fmt.Errorf("%w: %s.%s", ErrBadColumn, tableName, name)
		}
		nv, err := checkVal(ct, v)
		if err != nil {
			return fmt.Errorf("column %s: %w", name, err)
		}
		if idx, has := t.indexes[name]; has {
			removeID(idx, r[name], id)
			idx[nv] = append(idx[nv], id)
		}
		r[name] = nv
	}
	return nil
}

// Delete removes row id.
func (db *DB) Delete(tableName string, id int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	r, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("%w: %s id %d", ErrNoRow, tableName, id)
	}
	for col, idx := range t.indexes {
		removeID(idx, r[col], id)
	}
	delete(t.rows, id)
	for i, v := range t.order {
		if v == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	return nil
}

func removeID(idx map[any][]int64, key any, id int64) {
	ids := idx[key]
	for i, v := range ids {
		if v == id {
			idx[key] = append(ids[:i], ids[i+1:]...)
			return
		}
	}
}

// Select returns copies of all rows matching pred, in insertion order.
// A nil pred matches everything.
func (db *DB) Select(tableName string, pred func(Row) bool) ([]Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	var out []Row
	for _, id := range t.order {
		r := t.rows[id]
		if pred == nil || pred(r) {
			out = append(out, copyRow(r))
		}
	}
	return out, nil
}

// Lookup uses the index on col (building a scan if none exists) to find
// rows whose col equals val.
func (db *DB) Lookup(tableName, col string, val any) ([]Row, error) {
	db.mu.RLock()
	t, ok := db.tables[tableName]
	if !ok {
		db.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	ct, ok := t.cols[col]
	if !ok {
		db.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s.%s", ErrBadColumn, tableName, col)
	}
	nv, err := checkVal(ct, val)
	if err != nil {
		db.mu.RUnlock()
		return nil, err
	}
	if idx, has := t.indexes[col]; has {
		ids := idx[nv]
		out := make([]Row, 0, len(ids))
		for _, id := range ids {
			out = append(out, copyRow(t.rows[id]))
		}
		db.mu.RUnlock()
		return out, nil
	}
	db.mu.RUnlock()
	return db.Select(tableName, func(r Row) bool { return r[col] == nv })
}

// Count returns the number of rows in the table.
func (db *DB) Count(tableName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	return len(t.rows), nil
}
