package irdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements the SQL subset of the IRDB, used by command-line
// tools to inspect pipeline state. Supported statements:
//
//	CREATE TABLE t (a INT, b TEXT, c BOOL, d BYTES)
//	INSERT INTO t (a, b) VALUES (1, 'x')
//	SELECT * FROM t WHERE a = 1 AND b != 'x'
//	SELECT * FROM t WHERE a IN (1, 2, 3) AND b NOT IN ('x')
//	SELECT a, b FROM t ORDER BY a DESC LIMIT 10
//	SELECT COUNT(*) FROM t WHERE a > 3
//	UPDATE t SET a = 2 WHERE b = 'x'
//	DELETE FROM t WHERE a < 3
//
// Comparison operators: = != < <= > >=, plus IN/NOT IN over literal
// lists, combined with AND. An empty IN () list matches no row (and
// NOT IN () every row), matching standard SQL's vacuous semantics.
// Literals are integers, 'single-quoted strings' (with '' escaping a
// quote inside the string), TRUE and FALSE. Keywords are
// case-insensitive; identifiers are case-sensitive.

// Result is the outcome of an Exec call.
type Result struct {
	Cols     []string // selected column names (SELECT only)
	Rows     []Row    // matching rows (SELECT only)
	Affected int      // rows inserted/updated/deleted
	LastID   int64    // id of the inserted row (INSERT only)
}

// Exec parses and runs one SQL statement.
func (db *DB) Exec(query string) (Result, error) {
	toks, err := tokenize(query)
	if err != nil {
		return Result{}, err
	}
	p := &sqlParser{toks: toks}
	switch {
	case p.peekKw("CREATE"):
		return p.create(db)
	case p.peekKw("INSERT"):
		return p.insert(db)
	case p.peekKw("SELECT"):
		return p.query(db)
	case p.peekKw("UPDATE"):
		return p.update(db)
	case p.peekKw("DELETE"):
		return p.deleteStmt(db)
	}
	return Result{}, fmt.Errorf("irdb: unsupported statement %q", query)
}

type token struct {
	kind byte // 'i' ident, 'n' number, 's' string, 'p' punct
	text string
}

func tokenize(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(s) {
					return nil, fmt.Errorf("irdb: unterminated string literal")
				}
				if s[j] == '\'' {
					// A doubled quote is SQL's escape for a literal
					// quote inside the string ('it''s' => it's).
					if j+1 < len(s) && s[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			toks = append(toks, token{kind: 's', text: sb.String()})
			i = j + 1
		case c == '-' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(s) && ((s[j] >= '0' && s[j] <= '9') || s[j] == 'x' ||
				(s[j] >= 'a' && s[j] <= 'f') || (s[j] >= 'A' && s[j] <= 'F')) {
				j++
			}
			toks = append(toks, token{kind: 'n', text: s[i:j]})
			i = j
		case isIdentByte(c):
			j := i + 1
			for j < len(s) && (isIdentByte(s[j]) || (s[j] >= '0' && s[j] <= '9')) {
				j++
			}
			toks = append(toks, token{kind: 'i', text: s[i:j]})
			i = j
		case strings.IndexByte("(),*=", c) >= 0:
			toks = append(toks, token{kind: 'p', text: string(c)})
			i++
		case c == '!' || c == '<' || c == '>':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{kind: 'p', text: s[i : i+2]})
				i += 2
			} else {
				toks = append(toks, token{kind: 'p', text: string(c)})
				i++
			}
		default:
			return nil, fmt.Errorf("irdb: unexpected character %q", c)
		}
	}
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

type sqlParser struct {
	toks []token
	pos  int
}

func (p *sqlParser) peekKw(kw string) bool {
	return p.pos < len(p.toks) && p.toks[p.pos].kind == 'i' &&
		strings.EqualFold(p.toks[p.pos].text, kw)
}

func (p *sqlParser) eatKw(kw string) error {
	if !p.peekKw(kw) {
		return fmt.Errorf("irdb: expected %s", kw)
	}
	p.pos++
	return nil
}

func (p *sqlParser) eatPunct(ch string) error {
	if p.pos >= len(p.toks) || p.toks[p.pos].kind != 'p' || p.toks[p.pos].text != ch {
		return fmt.Errorf("irdb: expected %q", ch)
	}
	p.pos++
	return nil
}

func (p *sqlParser) ident() (string, error) {
	if p.pos >= len(p.toks) || p.toks[p.pos].kind != 'i' {
		return "", fmt.Errorf("irdb: expected identifier")
	}
	t := p.toks[p.pos].text
	p.pos++
	return t, nil
}

func (p *sqlParser) literal() (any, error) {
	if p.pos >= len(p.toks) {
		return nil, fmt.Errorf("irdb: expected literal")
	}
	t := p.toks[p.pos]
	p.pos++
	switch t.kind {
	case 'n':
		neg := strings.HasPrefix(t.text, "-")
		body := strings.TrimPrefix(t.text, "-")
		base := 10
		if strings.HasPrefix(body, "0x") || strings.HasPrefix(body, "0X") {
			base, body = 16, body[2:]
		}
		v, err := strconv.ParseInt(body, base, 64)
		if err != nil {
			return nil, fmt.Errorf("irdb: bad number %q", t.text)
		}
		if neg {
			v = -v
		}
		return v, nil
	case 's':
		return t.text, nil
	case 'i':
		if strings.EqualFold(t.text, "TRUE") {
			return true, nil
		}
		if strings.EqualFold(t.text, "FALSE") {
			return false, nil
		}
	}
	return nil, fmt.Errorf("irdb: expected literal, got %q", t.text)
}

func (p *sqlParser) done() error {
	if p.pos != len(p.toks) {
		return fmt.Errorf("irdb: trailing tokens after statement")
	}
	return nil
}

// where parses an optional WHERE clause into a predicate.
func (p *sqlParser) where() (func(Row) bool, error) {
	if !p.peekKw("WHERE") {
		return nil, nil
	}
	p.pos++
	type cond struct {
		col, op string
		val     any
		set     []any // IN / NOT IN literal list
	}
	var conds []cond
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch {
		case p.peekKw("IN"):
			p.pos++
			set, err := p.literalList()
			if err != nil {
				return nil, err
			}
			conds = append(conds, cond{col: col, op: "in", set: set})
		case p.peekKw("NOT"):
			p.pos++
			if err := p.eatKw("IN"); err != nil {
				return nil, err
			}
			set, err := p.literalList()
			if err != nil {
				return nil, err
			}
			conds = append(conds, cond{col: col, op: "not-in", set: set})
		default:
			if p.pos >= len(p.toks) || p.toks[p.pos].kind != 'p' {
				return nil, fmt.Errorf("irdb: expected comparison operator")
			}
			op := p.toks[p.pos].text
			p.pos++
			val, err := p.literal()
			if err != nil {
				return nil, err
			}
			conds = append(conds, cond{col: col, op: op, val: val})
		}
		if !p.peekKw("AND") {
			break
		}
		p.pos++
	}
	return func(r Row) bool {
		for _, c := range conds {
			switch c.op {
			case "in", "not-in":
				member := false
				for _, v := range c.set {
					if compare(r[c.col], "=", v) {
						member = true
						break
					}
				}
				if member == (c.op == "not-in") {
					return false
				}
			default:
				if !compare(r[c.col], c.op, c.val) {
					return false
				}
			}
		}
		return true
	}, nil
}

// literalList parses a parenthesized comma-separated literal list, as
// used by IN. The list may be empty: IN () is a legal predicate that
// matches nothing.
func (p *sqlParser) literalList() ([]any, error) {
	if err := p.eatPunct("("); err != nil {
		return nil, err
	}
	var vals []any
	if p.pos < len(p.toks) && p.toks[p.pos].kind == 'p' && p.toks[p.pos].text == ")" {
		p.pos++
		return vals, nil
	}
	for {
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.pos < len(p.toks) && p.toks[p.pos].kind == 'p' && p.toks[p.pos].text == "," {
			p.pos++
			continue
		}
		break
	}
	if err := p.eatPunct(")"); err != nil {
		return nil, err
	}
	return vals, nil
}

// compare applies op between a stored value and a literal.
func compare(stored any, op string, lit any) bool {
	switch sv := stored.(type) {
	case int64:
		lv, ok := lit.(int64)
		if !ok {
			return false
		}
		switch op {
		case "=":
			return sv == lv
		case "!=":
			return sv != lv
		case "<":
			return sv < lv
		case "<=":
			return sv <= lv
		case ">":
			return sv > lv
		case ">=":
			return sv >= lv
		}
	case string:
		lv, ok := lit.(string)
		if !ok {
			return false
		}
		switch op {
		case "=":
			return sv == lv
		case "!=":
			return sv != lv
		case "<":
			return sv < lv
		case "<=":
			return sv <= lv
		case ">":
			return sv > lv
		case ">=":
			return sv >= lv
		}
	case bool:
		lv, ok := lit.(bool)
		if !ok {
			return false
		}
		switch op {
		case "=":
			return sv == lv
		case "!=":
			return sv != lv
		}
	}
	return false
}

func (p *sqlParser) create(db *DB) (Result, error) {
	p.pos++ // CREATE
	if err := p.eatKw("TABLE"); err != nil {
		return Result{}, err
	}
	name, err := p.ident()
	if err != nil {
		return Result{}, err
	}
	if err := p.eatPunct("("); err != nil {
		return Result{}, err
	}
	var cols []Col
	for {
		cn, err := p.ident()
		if err != nil {
			return Result{}, err
		}
		tn, err := p.ident()
		if err != nil {
			return Result{}, err
		}
		var ct ColType
		switch strings.ToUpper(tn) {
		case "INT", "INTEGER":
			ct = Int
		case "TEXT":
			ct = Text
		case "BYTES", "BLOB":
			ct = Bytes
		case "BOOL", "BOOLEAN":
			ct = Bool
		default:
			return Result{}, fmt.Errorf("irdb: unknown column type %q", tn)
		}
		cols = append(cols, Col{Name: cn, Type: ct})
		if p.pos < len(p.toks) && p.toks[p.pos].text == "," {
			p.pos++
			continue
		}
		break
	}
	if err := p.eatPunct(")"); err != nil {
		return Result{}, err
	}
	if err := p.done(); err != nil {
		return Result{}, err
	}
	if err := db.CreateTable(Schema{Name: name, Cols: cols}); err != nil {
		return Result{}, err
	}
	return Result{}, nil
}

func (p *sqlParser) insert(db *DB) (Result, error) {
	p.pos++ // INSERT
	if err := p.eatKw("INTO"); err != nil {
		return Result{}, err
	}
	name, err := p.ident()
	if err != nil {
		return Result{}, err
	}
	if err := p.eatPunct("("); err != nil {
		return Result{}, err
	}
	var cols []string
	for {
		cn, err := p.ident()
		if err != nil {
			return Result{}, err
		}
		cols = append(cols, cn)
		if p.pos < len(p.toks) && p.toks[p.pos].text == "," {
			p.pos++
			continue
		}
		break
	}
	if err := p.eatPunct(")"); err != nil {
		return Result{}, err
	}
	if err := p.eatKw("VALUES"); err != nil {
		return Result{}, err
	}
	if err := p.eatPunct("("); err != nil {
		return Result{}, err
	}
	row := Row{}
	for i := range cols {
		v, err := p.literal()
		if err != nil {
			return Result{}, err
		}
		row[cols[i]] = v
		if i < len(cols)-1 {
			if err := p.eatPunct(","); err != nil {
				return Result{}, err
			}
		}
	}
	if err := p.eatPunct(")"); err != nil {
		return Result{}, err
	}
	if err := p.done(); err != nil {
		return Result{}, err
	}
	id, err := db.Insert(name, row)
	if err != nil {
		return Result{}, err
	}
	return Result{Affected: 1, LastID: id}, nil
}

func (p *sqlParser) query(db *DB) (Result, error) {
	p.pos++ // SELECT
	var cols []string
	star, count := false, false
	switch {
	case p.pos < len(p.toks) && p.toks[p.pos].text == "*":
		star = true
		p.pos++
	case p.peekKw("COUNT"):
		p.pos++
		if err := p.eatPunct("("); err != nil {
			return Result{}, err
		}
		if err := p.eatPunct("*"); err != nil {
			return Result{}, err
		}
		if err := p.eatPunct(")"); err != nil {
			return Result{}, err
		}
		count = true
	default:
		for {
			cn, err := p.ident()
			if err != nil {
				return Result{}, err
			}
			cols = append(cols, cn)
			if p.pos < len(p.toks) && p.toks[p.pos].text == "," {
				p.pos++
				continue
			}
			break
		}
	}
	if err := p.eatKw("FROM"); err != nil {
		return Result{}, err
	}
	name, err := p.ident()
	if err != nil {
		return Result{}, err
	}
	pred, err := p.where()
	if err != nil {
		return Result{}, err
	}
	orderCol, orderDesc, hasOrder, err := p.orderBy()
	if err != nil {
		return Result{}, err
	}
	limit, hasLimit, err := p.limit()
	if err != nil {
		return Result{}, err
	}
	if err := p.done(); err != nil {
		return Result{}, err
	}
	rows, err := db.Select(name, pred)
	if err != nil {
		return Result{}, err
	}
	if count {
		return Result{
			Cols: []string{"count"},
			Rows: []Row{{"count": int64(len(rows))}},
		}, nil
	}
	if hasOrder {
		if err := validateColumn(db, name, orderCol); err != nil {
			return Result{}, err
		}
		sort.SliceStable(rows, func(i, j int) bool {
			less := rowLess(rows[i][orderCol], rows[j][orderCol])
			if orderDesc {
				return rowLess(rows[j][orderCol], rows[i][orderCol])
			}
			return less
		})
	}
	if hasLimit && int64(len(rows)) > limit {
		rows = rows[:limit]
	}
	if star {
		db.mu.RLock()
		t := db.tables[name]
		cols = []string{"id"}
		names := make([]string, 0, len(t.schema.Cols))
		for _, c := range t.schema.Cols {
			names = append(names, c.Name)
		}
		db.mu.RUnlock()
		sort.Strings(names)
		cols = append(cols, names...)
	} else {
		// Validate column names and project.
		for _, c := range cols {
			db.mu.RLock()
			_, ok := db.tables[name].cols[c]
			db.mu.RUnlock()
			if !ok {
				return Result{}, fmt.Errorf("%w: %s.%s", ErrBadColumn, name, c)
			}
		}
		for i, r := range rows {
			pr := Row{}
			for _, c := range cols {
				pr[c] = r[c]
			}
			rows[i] = pr
		}
	}
	return Result{Cols: cols, Rows: rows}, nil
}

// orderBy parses an optional ORDER BY col [ASC|DESC] clause.
func (p *sqlParser) orderBy() (col string, desc, present bool, err error) {
	if !p.peekKw("ORDER") {
		return "", false, false, nil
	}
	p.pos++
	if err := p.eatKw("BY"); err != nil {
		return "", false, false, err
	}
	col, err = p.ident()
	if err != nil {
		return "", false, false, err
	}
	switch {
	case p.peekKw("DESC"):
		desc = true
		p.pos++
	case p.peekKw("ASC"):
		p.pos++
	}
	return col, desc, true, nil
}

// limit parses an optional LIMIT n clause.
func (p *sqlParser) limit() (int64, bool, error) {
	if !p.peekKw("LIMIT") {
		return 0, false, nil
	}
	p.pos++
	v, err := p.literal()
	if err != nil {
		return 0, false, err
	}
	n, ok := v.(int64)
	if !ok || n < 0 {
		return 0, false, fmt.Errorf("irdb: bad LIMIT %v", v)
	}
	return n, true, nil
}

// rowLess orders stored values of the same column type.
func rowLess(a, b any) bool {
	switch av := a.(type) {
	case int64:
		bv, _ := b.(int64)
		return av < bv
	case string:
		bv, _ := b.(string)
		return av < bv
	case bool:
		bv, _ := b.(bool)
		return !av && bv
	}
	return false
}

// validateColumn checks col exists on the table.
func validateColumn(db *DB, table, col string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	if _, ok := t.cols[col]; !ok {
		return fmt.Errorf("%w: %s.%s", ErrBadColumn, table, col)
	}
	return nil
}

func (p *sqlParser) update(db *DB) (Result, error) {
	p.pos++ // UPDATE
	name, err := p.ident()
	if err != nil {
		return Result{}, err
	}
	if err := p.eatKw("SET"); err != nil {
		return Result{}, err
	}
	changes := Row{}
	for {
		cn, err := p.ident()
		if err != nil {
			return Result{}, err
		}
		if err := p.eatPunct("="); err != nil {
			return Result{}, err
		}
		v, err := p.literal()
		if err != nil {
			return Result{}, err
		}
		changes[cn] = v
		if p.pos < len(p.toks) && p.toks[p.pos].text == "," {
			p.pos++
			continue
		}
		break
	}
	pred, err := p.where()
	if err != nil {
		return Result{}, err
	}
	if err := p.done(); err != nil {
		return Result{}, err
	}
	rows, err := db.Select(name, pred)
	if err != nil {
		return Result{}, err
	}
	for _, r := range rows {
		id, _ := r["id"].(int64)
		if err := db.Update(name, id, changes); err != nil {
			return Result{}, err
		}
	}
	return Result{Affected: len(rows)}, nil
}

func (p *sqlParser) deleteStmt(db *DB) (Result, error) {
	p.pos++ // DELETE
	if err := p.eatKw("FROM"); err != nil {
		return Result{}, err
	}
	name, err := p.ident()
	if err != nil {
		return Result{}, err
	}
	pred, err := p.where()
	if err != nil {
		return Result{}, err
	}
	if err := p.done(); err != nil {
		return Result{}, err
	}
	rows, err := db.Select(name, pred)
	if err != nil {
		return Result{}, err
	}
	for _, r := range rows {
		id, _ := r["id"].(int64)
		if err := db.Delete(name, id); err != nil {
			return Result{}, err
		}
	}
	return Result{Affected: len(rows)}, nil
}
