package transform

import "zipr/internal/isa"

// NopElide deletes no-op instructions (alignment padding, compiler
// artifacts) through the removal half of the user-transform API. It is
// the paper's "remove instructions" capability in its simplest useful
// form: rewritten binaries shrink slightly and execute fewer
// instructions, and the IR normalization proves that deletions compose
// with pins and branch targets (a branch to a deleted nop lands on the
// instruction after it; a pinned nop's reference moves with execution).
type NopElide struct{}

var _ Transform = NopElide{}

// Name implements Transform.
func (NopElide) Name() string { return "nop-elide" }

// Apply implements Transform.
func (t NopElide) Apply(ctx *Context) error {
	for _, n := range ctx.Prog.Insts {
		if n.Inst.Op != isa.OpNop || n.Deleted || n.Fallthrough == nil {
			continue
		}
		if err := ctx.Delete(n); err != nil {
			return err
		}
	}
	return nil
}
