package zipr_test

// Fleet and disk-tier benchmarks. The daemon/gateway hot-cache pair
// prices the gateway hop: BenchmarkDaemonHotCache is one HTTP round
// trip into a warmed worker, BenchmarkGatewayHotCache adds the
// consistent-hash route and the second hop, and `make benchgate` holds
// the ratio to ≤3x. The disk-tier pair prices the second cache tier
// against BenchmarkServeColdMiss: a disk hit (read + digest check)
// must stay ≥10x faster than rerunning the pipeline for the spill to
// pay for itself.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"zipr"
	"zipr/internal/serve"
)

const benchQuery = "transforms=cfi"

// httpRewrite posts img to a live server over its real TCP listener.
func httpRewrite(b *testing.B, client *http.Client, url string, img []byte) {
	b.Helper()
	resp, err := client.Post(url+"/rewrite?"+benchQuery, "application/octet-stream", bytes.NewReader(img))
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
}

// BenchmarkDaemonHotCache measures a warmed request over one HTTP hop
// straight into a worker daemon — the single-daemon baseline the
// gateway overhead gate divides by.
func BenchmarkDaemonHotCache(b *testing.B) {
	img := benchImage(b)
	s := serve.New(serve.Options{Workers: 1})
	defer s.Close()
	ts := fleetWorker(b, s)
	client := ts.Client()
	httpRewrite(b, client, ts.URL, img) // warm the cache and the connection
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		httpRewrite(b, client, ts.URL, img)
	}
	b.StopTimer()
	if st := s.Stats(); st.PipelineRuns != 1 {
		b.Fatalf("hot loop ran the pipeline %d times, want 1", st.PipelineRuns)
	}
}

// BenchmarkGatewayHotCache measures the same warmed request through
// the fleet gateway: consistent-hash routing plus the extra hop to the
// owning worker.
func BenchmarkGatewayHotCache(b *testing.B) {
	img := benchImage(b)
	h, _ := newGoldenFleet(b)
	gw := httptest.NewServer(h)
	defer gw.Close()
	client := gw.Client()
	httpRewrite(b, client, gw.URL, img) // warm the owning worker and both connections
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		httpRewrite(b, client, gw.URL, img)
	}
}

// benchDiskTier returns a tier in dir warmed with img's rewrite (write-
// behind drained), reopened fresh.
func benchWarmTier(b *testing.B, img []byte, cfg zipr.Config) *serve.DiskTier {
	b.Helper()
	dir := b.TempDir()
	tier, err := serve.OpenDiskTier(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	s := serve.New(serve.Options{Workers: 1, SnapshotBytes: -1, Disk: tier})
	if _, _, err := s.Rewrite(context.Background(), img, cfg); err != nil {
		b.Fatal(err)
	}
	s.Close()
	tier.Close()
	tier2, err := serve.OpenDiskTier(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(tier2.Close)
	return tier2
}

// BenchmarkDiskTierHit measures the disk tier answering an empty-RAM
// server: object read plus digest verification, no pipeline. RAM
// caching is disabled so every iteration goes to disk.
func BenchmarkDiskTierHit(b *testing.B) {
	img := benchImage(b)
	cfg := zipr.Config{Transforms: []zipr.Transform{zipr.CFI()}}
	tier := benchWarmTier(b, img, cfg)
	s := serve.New(serve.Options{Workers: 1, CacheBytes: -1, SnapshotBytes: -1, Disk: tier})
	defer s.Close()
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Rewrite(context.Background(), img, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.Stats()
	if st.PipelineRuns != 0 || st.DiskHits != int64(b.N) {
		b.Fatalf("runs=%d diskHits=%d, want 0/%d", st.PipelineRuns, st.DiskHits, b.N)
	}
}

// BenchmarkDiskTierPromote measures the restart recovery path: a disk
// hit plus its promotion into the in-memory cache (a fresh empty-RAM
// server per iteration, construction off the clock).
func BenchmarkDiskTierPromote(b *testing.B) {
	img := benchImage(b)
	cfg := zipr.Config{Transforms: []zipr.Transform{zipr.CFI()}}
	tier := benchWarmTier(b, img, cfg)
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := serve.New(serve.Options{Workers: 1, SnapshotBytes: -1, Disk: tier})
		b.StartTimer()
		if _, _, err := s.Rewrite(context.Background(), img, cfg); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if st := s.Stats(); st.DiskPromotes != 1 {
			b.Fatalf("promotes=%d, want 1", st.DiskPromotes)
		}
		s.Close()
		b.StartTimer()
	}
}
