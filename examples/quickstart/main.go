// Quickstart: assemble a small program, rewrite it with the Null
// transform (the paper's robustness baseline), run both versions in the
// DECREE-like VM on the same input, and show that behavior is identical
// while the reassembly statistics reveal what the rewriter did.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"zipr"
	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/loader"
	"zipr/internal/vm"
)

const program = `
.text 0x00100000
main:
    movi r0, 3          ; receive(0, buf, 16)
    movi r1, 0
    movi r2, buf
    movi r3, 16
    syscall
    mov r10, r0         ; bytes read
    movi r9, 0          ; checksum
    movi r8, 0
loop:
    cmp r8, r10
    jae done
    movi r2, buf
    add r2, r8
    loadb r1, [r2]
    call mix            ; direct call
    add r9, r1
    inc r8
    jmp loop
done:
    movi r2, out        ; transmit(1, out, 4)
    store [r2], r9
    movi r0, 2
    movi r1, 1
    movi r3, 4
    syscall
    mov r1, r9
    andi r1, 0x3f
    movi r0, 1          ; terminate(checksum & 0x3f)
    syscall
mix:
    mov r2, r1
    shli r2, 3
    xor r1, r2
    addi r1, 41
    ret
.data 0x00200000
buf: .space 16
out: .space 4
`

func run(bin *binfmt.Binary, input string) vm.Result {
	m := vm.New(vm.WithStdin(strings.NewReader(input)), vm.WithMaxSteps(1_000_000))
	if err := loader.Load(m, bin, nil); err != nil {
		log.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	original, err := asm.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	rewritten, report, err := zipr.RewriteBinary(original.Clone(), zipr.Config{
		Transforms: []zipr.Transform{zipr.Null()},
	})
	if err != nil {
		log.Fatal(err)
	}

	const input = "hello, rewriter!"
	before := run(original, input)
	after := run(rewritten, input)

	fmt.Printf("original:  exit=%d steps=%d output=%x\n", before.ExitCode, before.Steps, before.Output)
	fmt.Printf("rewritten: exit=%d steps=%d output=%x\n", after.ExitCode, after.Steps, after.Output)
	if before.ExitCode == after.ExitCode && bytes.Equal(before.Output, after.Output) {
		fmt.Println("=> behavior identical")
	} else {
		fmt.Println("=> BEHAVIOR DIVERGED (bug!)")
	}
	fmt.Printf("file size %d -> %d bytes (%+.2f%%)\n",
		report.InputSize, report.OutputSize, report.SizeOverhead()*100)
	fmt.Printf("pins=%d inline=%d dollops=%d splits=%d overflow=%dB\n",
		report.Stats.Pinned, report.Stats.InlinePins, report.Stats.Dollops,
		report.Stats.Splits, report.Stats.OverflowUsed)
}
