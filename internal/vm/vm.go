// Package vm executes ZVM-32 machine code in a deterministic simulated
// environment modeled on DARPA's DECREE: exactly seven system calls
// (terminate, transmit, receive, fdwait, allocate, deallocate, random),
// no filesystem, and byte-stream stdin/stdout. The machine counts retired
// instructions (the CGC "execution" metric) and tracks every 4 KiB page
// it touches (the CGC "memory"/MaxRSS metric), so overhead measurements
// of rewritten binaries are exact and noise-free.
package vm

import (
	"errors"
	"fmt"
	"io"

	"zipr/internal/isa"
)

// PageSize is the machine's page size in bytes.
const PageSize = 4096

// Memory-layout constants shared with the loader and program generators.
const (
	// StackTop is the initial stack pointer; the stack grows down.
	StackTop uint32 = 0xBFFF0000
	// StackSize is the mapped stack size in bytes.
	StackSize uint32 = 64 * 1024
	// HeapBase is where allocate() starts handing out pages.
	HeapBase uint32 = 0x40000000
)

// Perm is a page permission bitmask.
type Perm uint8

// Permissions.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
)

// DECREE system call numbers (passed in r0).
const (
	SysTerminate  = 1
	SysTransmit   = 2
	SysReceive    = 3
	SysFdwait     = 4
	SysAllocate   = 5
	SysDeallocate = 6
	SysRandom     = 7
)

// Fault describes an abnormal machine stop.
type Fault struct {
	PC     uint32
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("vm: fault at %#x: %s", f.PC, f.Reason)
}

// ErrStepLimit is returned when execution exceeds the step budget.
var ErrStepLimit = errors.New("vm: step limit exceeded")

type page struct {
	data [PageSize]byte
	perm Perm
}

// Machine is a single ZVM hart plus its address space and OS state.
// The machine model (registers, flags, memory, syscalls) is shared by
// both ISAs; WithArch selects the instruction codec used by fetch.
type Machine struct {
	pages      map[uint32]*page // keyed by addr >> 12
	touched    map[uint32]struct{}
	regs       [isa.NumRegs]uint32
	pc         uint32
	zf, lt, bf bool
	arch       isa.Arch

	stdin    io.Reader
	stdout   []byte
	rngState uint64

	steps    uint64
	maxSteps uint64
	syscalls uint64
	memOps   uint64
	heapNext uint32

	halted   bool
	exitCode int32

	trace    []uint32 // ring buffer of recent PCs (diagnostics)
	tracePos int
}

// Option configures a Machine.
type Option func(*Machine)

// WithStdin supplies the program's input stream.
func WithStdin(r io.Reader) Option { return func(m *Machine) { m.stdin = r } }

// WithMaxSteps bounds execution; Run returns ErrStepLimit past it.
func WithMaxSteps(n uint64) Option { return func(m *Machine) { m.maxSteps = n } }

// WithTrace keeps a ring buffer of the last n program-counter values for
// post-mortem diagnostics (see LastPCs).
func WithTrace(n int) Option {
	return func(m *Machine) { m.trace = make([]uint32, n) }
}

// WithArch selects the ISA the machine decodes (nil/default: ZVM-32).
// On fixed-width ISAs a misaligned PC is a fetch fault, exactly like a
// non-executable one.
func WithArch(a isa.Arch) Option { return func(m *Machine) { m.arch = isa.Of(a) } }

// WithRandomSeed seeds the deterministic random() syscall stream.
func WithRandomSeed(seed uint64) Option {
	return func(m *Machine) {
		if seed == 0 {
			seed = 1
		}
		m.rngState = seed
	}
}

// New creates a machine with a mapped stack and no other memory.
func New(opts ...Option) *Machine {
	m := &Machine{
		pages:    make(map[uint32]*page),
		touched:  make(map[uint32]struct{}),
		arch:     isa.DefaultArch(),
		rngState: 0x5DEECE66D,
		maxSteps: 200_000_000,
		heapNext: HeapBase,
	}
	for _, o := range opts {
		o(m)
	}
	_ = m.Map(StackTop-StackSize, int(StackSize), PermR|PermW)
	m.regs[isa.SP] = StackTop
	return m
}

// Map creates size bytes of zeroed memory at vaddr with the given
// permissions. vaddr must be page-aligned; size is rounded up to whole
// pages. Mapping over an existing page is an error.
func (m *Machine) Map(vaddr uint32, size int, perm Perm) error {
	if vaddr%PageSize != 0 {
		return fmt.Errorf("vm: unaligned map at %#x", vaddr)
	}
	nPages := (size + PageSize - 1) / PageSize
	for i := 0; i < nPages; i++ {
		key := vaddr/PageSize + uint32(i)
		if _, exists := m.pages[key]; exists {
			return fmt.Errorf("vm: page %#x already mapped", key*PageSize)
		}
		m.pages[key] = &page{perm: perm}
	}
	return nil
}

// WriteMem copies data into already-mapped memory, ignoring write
// permissions (used by loaders). It does not count as a touch.
func (m *Machine) WriteMem(vaddr uint32, data []byte) error {
	for i, b := range data {
		a := vaddr + uint32(i)
		pg, ok := m.pages[a/PageSize]
		if !ok {
			return fmt.Errorf("vm: WriteMem to unmapped %#x", a)
		}
		pg.data[a%PageSize] = b
	}
	return nil
}

// ReadMem copies memory out of the machine without counting touches.
func (m *Machine) ReadMem(vaddr uint32, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		a := vaddr + uint32(i)
		pg, ok := m.pages[a/PageSize]
		if !ok {
			return nil, fmt.Errorf("vm: ReadMem from unmapped %#x", a)
		}
		out[i] = pg.data[a%PageSize]
	}
	return out, nil
}

// SetPC sets the program counter (normally to a binary's entry point).
func (m *Machine) SetPC(pc uint32) { m.pc = pc }

// Reg returns the value of register r.
func (m *Machine) Reg(r int) uint32 { return m.regs[r] }

// SetReg sets register r.
func (m *Machine) SetReg(r int, v uint32) { m.regs[r] = v }

// Result summarizes a completed (or aborted) execution.
type Result struct {
	ExitCode     int32  // argument of terminate()
	Steps        uint64 // retired instructions: the CPU metric
	PagesTouched int    // distinct 4 KiB pages accessed: the MaxRSS metric
	Syscalls     uint64 // syscall instructions retired
	MemOps       uint64 // data loads/stores executed (fetches excluded)
	Output       []byte // everything transmitted to fd 1 and 2
}

// MaxRSSBytes converts the touched-page count into bytes.
func (r Result) MaxRSSBytes() uint64 { return uint64(r.PagesTouched) * PageSize }

func (m *Machine) result() Result {
	return Result{
		ExitCode:     m.exitCode,
		Steps:        m.steps,
		PagesTouched: len(m.touched),
		Syscalls:     m.syscalls,
		MemOps:       m.memOps,
		Output:       m.stdout,
	}
}

// Run executes from the current PC until the program terminates, faults,
// or exceeds the step budget. On fault the error is a *Fault and the
// partial Result is still returned.
func (m *Machine) Run() (Result, error) {
	for !m.halted {
		if m.steps >= m.maxSteps {
			return m.result(), ErrStepLimit
		}
		if err := m.step(); err != nil {
			return m.result(), err
		}
	}
	return m.result(), nil
}

// touch records residency of the page containing addr.
func (m *Machine) touch(addr uint32) {
	m.touched[addr/PageSize] = struct{}{}
}

func (m *Machine) fault(format string, args ...any) error {
	return &Fault{PC: m.pc, Reason: fmt.Sprintf(format, args...)}
}

// access returns the page and offset for addr after a permission check,
// recording residency.
func (m *Machine) access(addr uint32, need Perm) (*page, uint32, error) {
	pg, ok := m.pages[addr/PageSize]
	if !ok {
		return nil, 0, m.fault("access to unmapped address %#x", addr)
	}
	if pg.perm&need != need {
		return nil, 0, m.fault("permission violation at %#x (need %b have %b)", addr, need, pg.perm)
	}
	m.touch(addr)
	return pg, addr % PageSize, nil
}

func (m *Machine) load32(addr uint32) (uint32, error) {
	m.memOps++
	var v uint32
	for i := uint32(0); i < 4; i++ {
		pg, off, err := m.access(addr+i, PermR)
		if err != nil {
			return 0, err
		}
		v |= uint32(pg.data[off]) << (8 * i)
	}
	return v, nil
}

func (m *Machine) store32(addr, v uint32) error {
	m.memOps++
	for i := uint32(0); i < 4; i++ {
		pg, off, err := m.access(addr+i, PermW)
		if err != nil {
			return err
		}
		pg.data[off] = byte(v >> (8 * i))
	}
	return nil
}

func (m *Machine) load8(addr uint32) (byte, error) {
	m.memOps++
	pg, off, err := m.access(addr, PermR)
	if err != nil {
		return 0, err
	}
	return pg.data[off], nil
}

func (m *Machine) store8(addr uint32, v byte) error {
	m.memOps++
	pg, off, err := m.access(addr, PermW)
	if err != nil {
		return err
	}
	pg.data[off] = v
	return nil
}

func (m *Machine) push(v uint32) error {
	m.regs[isa.SP] -= 4
	return m.store32(m.regs[isa.SP], v)
}

func (m *Machine) pop() (uint32, error) {
	v, err := m.load32(m.regs[isa.SP])
	if err != nil {
		return 0, err
	}
	m.regs[isa.SP] += 4
	return v, nil
}

// fetch decodes the instruction at PC, checking execute permission on
// every byte consumed.
func (m *Machine) fetch() (isa.Inst, error) {
	// Sized for the longest encoding of any registered ISA.
	var buf [isa.ZVM64MaxLen]byte
	maxLen := m.arch.MaxLen()
	n := 0
	for ; n < maxLen; n++ {
		a := m.pc + uint32(n)
		pg, ok := m.pages[a/PageSize]
		if !ok || pg.perm&PermX == 0 {
			break
		}
		buf[n] = pg.data[a%PageSize]
	}
	if n == 0 {
		return isa.Inst{}, m.fault("execute from non-executable address %#x", m.pc)
	}
	in, err := m.arch.Decode(buf[:n], m.pc)
	if err != nil {
		return isa.Inst{}, m.fault("decode: %v (bytes % x)", err, buf[:n])
	}
	for i := 0; i < m.arch.InstLen(in); i++ {
		m.touch(m.pc + uint32(i))
	}
	return in, nil
}

func (m *Machine) setFlagsResult(res uint32) {
	m.zf = res == 0
	m.lt = int32(res) < 0
	m.bf = false
}

func (m *Machine) setFlagsCmp(a, b uint32) {
	m.zf = a == b
	m.lt = int32(a) < int32(b)
	m.bf = a < b
}

func (m *Machine) cond(cc isa.Cc) bool {
	switch cc {
	case isa.CcZ:
		return m.zf
	case isa.CcNZ:
		return !m.zf
	case isa.CcL:
		return m.lt
	case isa.CcGE:
		return !m.lt
	case isa.CcLE:
		return m.lt || m.zf
	case isa.CcG:
		return !m.lt && !m.zf
	case isa.CcB:
		return m.bf
	case isa.CcAE:
		return !m.bf
	}
	return false
}

// LastPCs returns the most recent program counters, oldest first
// (requires WithTrace).
func (m *Machine) LastPCs() []uint32 {
	if m.trace == nil {
		return nil
	}
	out := make([]uint32, 0, len(m.trace))
	for i := 0; i < len(m.trace); i++ {
		v := m.trace[(m.tracePos+i)%len(m.trace)]
		if v != 0 {
			out = append(out, v)
		}
	}
	return out
}

// step executes one instruction.
func (m *Machine) step() error {
	if m.trace != nil {
		m.trace[m.tracePos] = m.pc
		m.tracePos = (m.tracePos + 1) % len(m.trace)
	}
	in, err := m.fetch()
	if err != nil {
		return err
	}
	m.steps++
	next := m.pc + uint32(m.arch.InstLen(in))
	rd := &m.regs[in.Rd]
	rs := m.regs[in.Rs]

	switch in.Op {
	case isa.OpNop:
	case isa.OpHlt:
		return m.fault("hlt executed")
	case isa.OpRet:
		v, err := m.pop()
		if err != nil {
			return err
		}
		m.pc = v
		return nil
	case isa.OpSyscall:
		return m.syscall(next)

	case isa.OpPush:
		if err := m.push(*rd); err != nil {
			return err
		}
	case isa.OpPop:
		v, err := m.pop()
		if err != nil {
			return err
		}
		*rd = v
	case isa.OpJmpR:
		m.pc = *rd
		return nil
	case isa.OpCallR:
		if err := m.push(next); err != nil {
			return err
		}
		m.pc = *rd
		return nil
	case isa.OpInc:
		*rd++
		m.setFlagsResult(*rd)
	case isa.OpDec:
		*rd--
		m.setFlagsResult(*rd)
	case isa.OpNot:
		*rd = ^*rd

	case isa.OpPushI8, isa.OpPushI32:
		if err := m.push(uint32(in.Imm)); err != nil {
			return err
		}

	case isa.OpJmp8, isa.OpJmp32:
		m.pc = next + uint32(in.Imm)
		return nil
	case isa.OpCall:
		if err := m.push(next); err != nil {
			return err
		}
		m.pc = next + uint32(in.Imm)
		return nil
	case isa.OpJcc8, isa.OpJcc32:
		if m.cond(in.Cc) {
			m.pc = next + uint32(in.Imm)
			return nil
		}

	case isa.OpAdd:
		*rd += rs
		m.setFlagsResult(*rd)
	case isa.OpSub:
		*rd -= rs
		m.setFlagsResult(*rd)
	case isa.OpAnd:
		*rd &= rs
		m.setFlagsResult(*rd)
	case isa.OpOr:
		*rd |= rs
		m.setFlagsResult(*rd)
	case isa.OpXor:
		*rd ^= rs
		m.setFlagsResult(*rd)
	case isa.OpMul:
		*rd *= rs
		m.setFlagsResult(*rd)
	case isa.OpDiv:
		if rs == 0 {
			return m.fault("divide by zero")
		}
		*rd /= rs
		m.setFlagsResult(*rd)
	case isa.OpMod:
		if rs == 0 {
			return m.fault("modulo by zero")
		}
		*rd %= rs
		m.setFlagsResult(*rd)
	case isa.OpShl:
		*rd <<= rs & 31
		m.setFlagsResult(*rd)
	case isa.OpShr:
		*rd >>= rs & 31
		m.setFlagsResult(*rd)
	case isa.OpCmp:
		m.setFlagsCmp(*rd, rs)
	case isa.OpMov:
		*rd = rs

	case isa.OpAddI8, isa.OpAddI:
		*rd += uint32(in.Imm)
		m.setFlagsResult(*rd)
	case isa.OpCmpI8, isa.OpCmpI:
		m.setFlagsCmp(*rd, uint32(in.Imm))
	case isa.OpShlI:
		*rd <<= uint32(in.Imm) & 31
		m.setFlagsResult(*rd)
	case isa.OpShrI:
		*rd >>= uint32(in.Imm) & 31
		m.setFlagsResult(*rd)
	case isa.OpMovI:
		*rd = uint32(in.Imm)
	case isa.OpAndI:
		*rd &= uint32(in.Imm)
		m.setFlagsResult(*rd)
	case isa.OpOrI:
		*rd |= uint32(in.Imm)
		m.setFlagsResult(*rd)
	case isa.OpXorI:
		*rd ^= uint32(in.Imm)
		m.setFlagsResult(*rd)

	case isa.OpLea:
		*rd = next + uint32(in.Imm)
	case isa.OpLoadPC:
		v, err := m.load32(next + uint32(in.Imm))
		if err != nil {
			return err
		}
		*rd = v

	case isa.OpLoad:
		v, err := m.load32(rs + uint32(in.Imm))
		if err != nil {
			return err
		}
		*rd = v
	case isa.OpLoadB:
		v, err := m.load8(rs + uint32(in.Imm))
		if err != nil {
			return err
		}
		*rd = uint32(v)
	case isa.OpStore:
		if err := m.store32(*rd+uint32(in.Imm), rs); err != nil {
			return err
		}
	case isa.OpStoreB:
		if err := m.store8(*rd+uint32(in.Imm), byte(rs)); err != nil {
			return err
		}

	default:
		return m.fault("unimplemented op %s", in.Op.Name())
	}
	m.pc = next
	return nil
}

// nextRand steps the deterministic xorshift64* generator.
func (m *Machine) nextRand() uint64 {
	x := m.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.rngState = x
	return x * 0x2545F4914F6CDD1D
}

// syscall implements the seven DECREE calls. r0 is the call number and
// receives the result; arguments are r1..r4.
func (m *Machine) syscall(next uint32) error {
	m.syscalls++
	num := m.regs[0]
	a1, a2, a3 := m.regs[1], m.regs[2], m.regs[3]
	switch num {
	case SysTerminate:
		m.halted = true
		m.exitCode = int32(a1)
		m.pc = next
		return nil
	case SysTransmit:
		if a1 != 1 && a1 != 2 {
			m.regs[0] = ^uint32(0) // -1: bad fd
			break
		}
		for i := uint32(0); i < a3; i++ {
			b, err := m.load8(a2 + i)
			if err != nil {
				return err
			}
			m.stdout = append(m.stdout, b)
		}
		m.regs[0] = a3
	case SysReceive:
		if a1 != 0 {
			m.regs[0] = ^uint32(0)
			break
		}
		n := uint32(0)
		if m.stdin != nil {
			buf := make([]byte, a3)
			read, _ := io.ReadFull(m.stdin, buf)
			for i := 0; i < read; i++ {
				if err := m.store8(a2+uint32(i), buf[i]); err != nil {
					return err
				}
			}
			n = uint32(read)
		}
		m.regs[0] = n
	case SysFdwait:
		m.regs[0] = 0
	case SysAllocate:
		length := a1
		if length == 0 || length > 1<<26 {
			m.regs[0] = 0
			break
		}
		addr := m.heapNext
		if err := m.Map(addr, int(length), PermR|PermW); err != nil {
			return m.fault("allocate: %v", err)
		}
		m.heapNext += (length + PageSize - 1) / PageSize * PageSize
		m.regs[0] = addr
	case SysDeallocate:
		// Pages stay mapped (and counted): a conservative MaxRSS, as on
		// DECREE where RSS high-water marks never shrink.
		m.regs[0] = 0
	case SysRandom:
		for i := uint32(0); i < a2; i++ {
			if err := m.store8(a1+i, byte(m.nextRand())); err != nil {
				return err
			}
		}
		m.regs[0] = a2
	default:
		return m.fault("unknown syscall %d", num)
	}
	m.pc = next
	return nil
}
