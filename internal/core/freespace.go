package core

import (
	"fmt"
	"sort"

	"zipr/internal/ir"
)

// FreeSpace tracks the unallocated byte ranges of the rewritten text
// segment. It starts as the original text range minus fixed regions;
// pinned references, chains, sleds and dollops carve pieces out of it,
// and inline-pin placement can return unused tails.
//
// The reassembly pipeline now runs on Alloc (alloc.go), the indexed
// allocator; FreeSpace remains as the straightforward sorted-slice
// reference implementation that the differential fuzz target
// (FuzzAlloc) and the allocator unit tests compare against. It
// implements the same Space query interface, each query as a plain
// linear scan.
type FreeSpace struct {
	blocks []ir.Range // sorted by Start, disjoint, non-empty
	align  uint32     // target ISA instruction alignment (0 or 1: none)
}

var _ Space = (*FreeSpace)(nil)

// NewFreeSpace creates a manager covering whole minus the holes.
func NewFreeSpace(whole ir.Range, holes []ir.Range) *FreeSpace {
	fs := &FreeSpace{}
	cur := whole.Start
	for _, h := range ir.MergeRanges(holes) {
		if h.Start > cur {
			end := h.Start
			if end > whole.End {
				end = whole.End
			}
			if end > cur {
				fs.blocks = append(fs.blocks, ir.Range{Start: cur, End: end})
			}
		}
		if h.End > cur {
			cur = h.End
		}
	}
	if cur < whole.End {
		fs.blocks = append(fs.blocks, ir.Range{Start: cur, End: whole.End})
	}
	return fs
}

// Blocks returns a copy of the current free blocks, sorted by address.
func (fs *FreeSpace) Blocks() []ir.Range {
	return append([]ir.Range(nil), fs.blocks...)
}

// SetAlign declares the target ISA's instruction alignment, mirroring
// Alloc.SetAlign for the differential tests.
func (fs *FreeSpace) SetAlign(align uint32) { fs.align = align }

// Align implements Space.
func (fs *FreeSpace) Align() uint32 {
	if fs.align == 0 {
		return 1
	}
	return fs.align
}

// NumBlocks implements Space.
func (fs *FreeSpace) NumBlocks() int { return len(fs.blocks) }

// TotalFree returns the number of free bytes.
func (fs *FreeSpace) TotalFree() int {
	total := 0
	for _, b := range fs.blocks {
		total += int(b.Len())
	}
	return total
}

// Largest returns the lowest-addressed free block of maximal size.
func (fs *FreeSpace) Largest() (ir.Range, bool) {
	var best ir.Range
	found := false
	for _, b := range fs.blocks {
		if !found || b.Len() > best.Len() {
			best, found = b, true
		}
	}
	return best, found
}

// LowestFit implements Space by linear scan.
func (fs *FreeSpace) LowestFit(size int) (ir.Range, bool) {
	for _, b := range fs.blocks {
		if int(b.Len()) >= size {
			return b, true
		}
	}
	return ir.Range{}, false
}

// HighestFit implements Space by linear scan.
func (fs *FreeSpace) HighestFit(size int) (ir.Range, bool) {
	for i := len(fs.blocks) - 1; i >= 0; i-- {
		if int(fs.blocks[i].Len()) >= size {
			return fs.blocks[i], true
		}
	}
	return ir.Range{}, false
}

// BestFit implements Space by linear scan: the smallest fitting block,
// lowest-addressed among equals.
func (fs *FreeSpace) BestFit(size int) (ir.Range, bool) {
	best := -1
	for i, b := range fs.blocks {
		if int(b.Len()) < size {
			continue
		}
		if best < 0 || b.Len() < fs.blocks[best].Len() {
			best = i
		}
	}
	if best < 0 {
		return ir.Range{}, false
	}
	return fs.blocks[best], true
}

// NearestFit implements Space by linear scan: the fitting block whose
// start is closest to hint, lower-addressed among equidistant pairs.
func (fs *FreeSpace) NearestFit(hint uint32, size int) (ir.Range, bool) {
	best := -1
	var bestDist uint64
	for i, b := range fs.blocks {
		if int(b.Len()) < size {
			continue
		}
		d := int64(b.Start) - int64(hint)
		if d < 0 {
			d = -d
		}
		if best < 0 || uint64(d) < bestDist {
			best, bestDist = i, uint64(d)
		}
	}
	if best < 0 {
		return ir.Range{}, false
	}
	return fs.blocks[best], true
}

// VisitFits implements Space by linear scan.
func (fs *FreeSpace) VisitFits(size int, fn func(ir.Range) bool) {
	for _, b := range fs.blocks {
		if int(b.Len()) >= size && !fn(b) {
			return
		}
	}
}

// Visit implements Space.
func (fs *FreeSpace) Visit(fn func(ir.Range) bool) {
	for _, b := range fs.blocks {
		if !fn(b) {
			return
		}
	}
}

// blockIndexContaining finds the block containing r, or -1.
func (fs *FreeSpace) blockIndexContaining(r ir.Range) int {
	idx := sort.Search(len(fs.blocks), func(i int) bool { return fs.blocks[i].End > r.Start })
	if idx < len(fs.blocks) {
		b := fs.blocks[idx]
		if r.Start >= b.Start && r.End <= b.End {
			return idx
		}
	}
	return -1
}

// Contains reports whether r is entirely free.
func (fs *FreeSpace) Contains(r ir.Range) bool {
	return fs.blockIndexContaining(r) >= 0
}

// Carve removes r, which must lie entirely inside one free block.
func (fs *FreeSpace) Carve(r ir.Range) error {
	if r.Start >= r.End {
		return fmt.Errorf("core: carve of empty range %+v", r)
	}
	idx := fs.blockIndexContaining(r)
	if idx < 0 {
		return fmt.Errorf("core: carve %+v not in free space", r)
	}
	b := fs.blocks[idx]
	var repl []ir.Range
	if b.Start < r.Start {
		repl = append(repl, ir.Range{Start: b.Start, End: r.Start})
	}
	if r.End < b.End {
		repl = append(repl, ir.Range{Start: r.End, End: b.End})
	}
	fs.blocks = append(fs.blocks[:idx], append(repl, fs.blocks[idx+1:]...)...)
	return nil
}

// Release returns r to the free pool, merging with its (at most two)
// adjacent neighbors. The insertion point is found by binary search and
// the merge touches only the neighbors — no re-sort of the whole list.
// Releasing bytes that are already free is a double-free by the
// caller; the old behavior silently unioned the overlap away, which
// masked accounting bugs, so it now panics.
func (fs *FreeSpace) Release(r ir.Range) {
	if r.Start >= r.End {
		return
	}
	// idx is where r would be inserted to keep blocks sorted by Start.
	idx := sort.Search(len(fs.blocks), func(i int) bool { return fs.blocks[i].Start >= r.Start })
	if idx > 0 && fs.blocks[idx-1].End > r.Start {
		panic(fmt.Sprintf("core: double free of %+v (overlaps free block %+v)", r, fs.blocks[idx-1]))
	}
	if idx < len(fs.blocks) && fs.blocks[idx].Start < r.End {
		panic(fmt.Sprintf("core: double free of %+v (overlaps free block %+v)", r, fs.blocks[idx]))
	}
	mergeL := idx > 0 && fs.blocks[idx-1].End == r.Start
	mergeR := idx < len(fs.blocks) && fs.blocks[idx].Start == r.End
	switch {
	case mergeL && mergeR:
		fs.blocks[idx-1].End = fs.blocks[idx].End
		fs.blocks = append(fs.blocks[:idx], fs.blocks[idx+1:]...)
	case mergeL:
		fs.blocks[idx-1].End = r.End
	case mergeR:
		fs.blocks[idx].Start = r.Start
	default:
		fs.blocks = append(fs.blocks, ir.Range{})
		copy(fs.blocks[idx+1:], fs.blocks[idx:])
		fs.blocks[idx] = r
	}
}

// BlockStartingAt returns the free block that begins exactly at addr,
// located by binary search.
func (fs *FreeSpace) BlockStartingAt(addr uint32) (ir.Range, bool) {
	idx := sort.Search(len(fs.blocks), func(i int) bool { return fs.blocks[i].Start >= addr })
	if idx < len(fs.blocks) && fs.blocks[idx].Start == addr {
		return fs.blocks[idx], true
	}
	return ir.Range{}, false
}

// FindWithin returns the lowest free range of exactly size bytes that
// lies wholly inside window, if any.
func (fs *FreeSpace) FindWithin(window ir.Range, size uint32) (ir.Range, bool) {
	for _, b := range fs.blocks {
		lo := b.Start
		if lo < window.Start {
			lo = window.Start
		}
		hi := b.End
		if hi > window.End {
			hi = window.End
		}
		if hi > lo && hi-lo >= size {
			return ir.Range{Start: lo, End: lo + size}, true
		}
	}
	return ir.Range{}, false
}
