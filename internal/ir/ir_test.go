package ir

import (
	"sort"
	"testing"
	"testing/quick"

	"zipr/internal/binfmt"
	"zipr/internal/irdb"
	"zipr/internal/isa"
)

func testBin() *binfmt.Binary {
	return &binfmt.Binary{
		Type:  binfmt.Exec,
		Entry: 0x1000,
		Segments: []binfmt.Segment{
			{Kind: binfmt.Text, VAddr: 0x1000, Data: make([]byte, 64)},
			{Kind: binfmt.Data, VAddr: 0x2000, Data: make([]byte, 32)},
		},
	}
}

func TestInsertBeforeRedirectsReferences(t *testing.T) {
	p := NewProgram(testBin())
	a := p.AddOrig(0x1000, isa.Inst{Op: isa.OpNop})
	b := p.AddOrig(0x1001, isa.Inst{Op: isa.OpRet})
	a.Fallthrough = b
	a.Pinned = true
	// A branch elsewhere targets a.
	j := p.NewInst(isa.Inst{Op: isa.OpJmp32})
	j.Target = a

	displaced := p.InsertBefore(a, isa.Inst{Op: isa.OpPush, Rd: 3})
	// The node `a` now holds the inserted push; the original nop moved.
	if a.Inst.Op != isa.OpPush {
		t.Fatalf("head op = %s, want push", a.Inst.Op.Name())
	}
	if displaced.Inst.Op != isa.OpNop {
		t.Fatalf("displaced op = %s, want nop", displaced.Inst.Op.Name())
	}
	if a.Fallthrough != displaced || displaced.Fallthrough != b {
		t.Fatal("fallthrough chain broken")
	}
	if !a.Pinned || displaced.Pinned {
		t.Fatal("pin must stay on the sequence head")
	}
	if j.Target != a {
		t.Fatal("branch target must now reach the inserted instruction")
	}
	if p.ByAddr[0x1000] != a {
		t.Fatal("address map must still reach the sequence head")
	}
}

func TestInsertAfter(t *testing.T) {
	p := NewProgram(testBin())
	a := p.AddOrig(0x1000, isa.Inst{Op: isa.OpNop})
	b := p.AddOrig(0x1001, isa.Inst{Op: isa.OpRet})
	a.Fallthrough = b
	n := p.InsertAfter(a, isa.Inst{Op: isa.OpPop, Rd: 1})
	if a.Fallthrough != n || n.Fallthrough != b {
		t.Fatal("InsertAfter chain wrong")
	}
}

func TestAllocDataAndDefer(t *testing.T) {
	p := NewProgram(testBin())
	base := p.DataEnd()
	if base != 0x2020 {
		t.Fatalf("DataEnd = %#x, want 0x2020", base)
	}
	a1 := p.AllocData(10, 4)
	if a1 != 0x2020 {
		t.Fatalf("first alloc = %#x", a1)
	}
	a2 := p.AllocData(4, 8)
	if a2%8 != 0 || a2 < a1+10 {
		t.Fatalf("aligned alloc = %#x", a2)
	}
	d := p.Defer("bitmap", 16, func(*Layout) ([]byte, error) { return make([]byte, 16), nil })
	if d%4 != 0 {
		t.Fatalf("deferred addr %#x not aligned", d)
	}
	if len(p.Deferred) != 1 || p.Deferred[0].Size != 16 {
		t.Fatal("deferred blob not registered")
	}
	if got := p.DataEnd(); got < d+16 {
		t.Fatalf("DataEnd %#x does not cover deferred blob", got)
	}
}

func TestDataEndWithoutDataSegment(t *testing.T) {
	bin := testBin()
	bin.Segments = bin.Segments[:1]
	p := NewProgram(bin)
	if got := p.DataEnd(); got != 0x2000 { // text ends 0x1040 -> page up
		t.Fatalf("DataEnd = %#x, want 0x2000", got)
	}
}

func TestValidate(t *testing.T) {
	p := NewProgram(testBin())
	a := p.AddOrig(0x1000, isa.Inst{Op: isa.OpJmp32})
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	a.Target = p.NewInst(isa.Inst{Op: isa.OpRet})
	a.AbsTarget = 0x2000
	if err := p.Validate(); err == nil {
		t.Fatal("both Target and AbsTarget must be rejected")
	}
	a.AbsTarget = 0

	bad := p.NewInst(isa.Inst{Op: isa.OpNop})
	bad.Pinned = true
	if err := p.Validate(); err == nil {
		t.Fatal("pin without OrigAddr must be rejected")
	}
	bad.Pinned = false

	a.Fallthrough = bad // jmp32 has no fallthrough
	if err := p.Validate(); err == nil {
		t.Fatal("terminator with fallthrough must be rejected")
	}
	a.Fallthrough = nil

	p.Fixed = append(p.Fixed, Range{Start: 0x0, End: 0x10})
	if err := p.Validate(); err == nil {
		t.Fatal("fixed range outside text must be rejected")
	}
}

func TestPinnedInstsSorted(t *testing.T) {
	p := NewProgram(testBin())
	for _, a := range []uint32{0x1010, 0x1002, 0x1008} {
		n := p.AddOrig(a, isa.Inst{Op: isa.OpNop})
		n.Pinned = true
	}
	pins := p.PinnedInsts()
	if len(pins) != 3 {
		t.Fatalf("pins = %d", len(pins))
	}
	if !sort.SliceIsSorted(pins, func(i, j int) bool { return pins[i].OrigAddr < pins[j].OrigAddr }) {
		t.Fatal("PinnedInsts not sorted")
	}
}

func TestMergeRanges(t *testing.T) {
	got := MergeRanges([]Range{
		{Start: 10, End: 20},
		{Start: 15, End: 25},
		{Start: 25, End: 30}, // adjacent: merges
		{Start: 40, End: 50},
	})
	want := []Range{{Start: 10, End: 30}, {Start: 40, End: 50}}
	if len(got) != len(want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	}
	if MergeRanges(nil) != nil {
		t.Fatal("nil input should give nil")
	}
}

func TestQuickMergeRangesInvariants(t *testing.T) {
	f := func(pairs []uint16) bool {
		var rs []Range
		for i := 0; i+1 < len(pairs); i += 2 {
			a, b := uint32(pairs[i]), uint32(pairs[i+1])
			if a > b {
				a, b = b, a
			}
			rs = append(rs, Range{Start: a, End: b + 1})
		}
		merged := MergeRanges(rs)
		// Invariant 1: sorted, non-overlapping, non-adjacent.
		for i := 1; i < len(merged); i++ {
			if merged[i].Start <= merged[i-1].End {
				return false
			}
		}
		// Invariant 2: coverage preserved both ways.
		covered := func(set []Range, a uint32) bool {
			for _, r := range set {
				if r.Contains(a) {
					return true
				}
			}
			return false
		}
		for _, r := range rs {
			for _, probe := range []uint32{r.Start, r.End - 1} {
				if !covered(merged, probe) {
					return false
				}
			}
		}
		for _, r := range merged {
			for _, probe := range []uint32{r.Start, r.End - 1} {
				if !covered(rs, probe) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeOps(t *testing.T) {
	r := Range{Start: 10, End: 20}
	if r.Len() != 10 || !r.Contains(10) || r.Contains(20) || r.Contains(9) {
		t.Fatal("Range basics wrong")
	}
	if !r.Overlaps(Range{Start: 19, End: 25}) || r.Overlaps(Range{Start: 20, End: 25}) {
		t.Fatal("Overlaps wrong")
	}
}

func TestSaveToDB(t *testing.T) {
	p := NewProgram(testBin())
	a := p.AddOrig(0x1000, isa.Inst{Op: isa.OpCall})
	b := p.AddOrig(0x1005, isa.Inst{Op: isa.OpRet})
	a.Fallthrough = b
	a.Target = b
	a.Pinned = true
	p.Fixed = append(p.Fixed, Range{Start: 0x1020, End: 0x1030})
	p.Functions = append(p.Functions, &Function{Name: "main", Entry: a, Insts: []*Instruction{a, b}})
	p.Warnf("test warning %d", 1)

	db := irdb.New()
	if err := SaveToDB(db, p); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT * FROM instructions WHERE pinned = TRUE")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["orig_addr"].(int64) != 0x1000 {
		t.Fatalf("pinned query rows = %+v", res.Rows)
	}
	if res.Rows[0]["target"].(int64) != b.ID || res.Rows[0]["fallthrough"].(int64) != b.ID {
		t.Fatal("logical links not persisted")
	}
	res, _ = db.Exec("SELECT * FROM functions")
	if len(res.Rows) != 1 || res.Rows[0]["size"].(int64) != 2 {
		t.Fatalf("functions rows = %+v", res.Rows)
	}
	res, _ = db.Exec("SELECT * FROM fixed_ranges")
	if len(res.Rows) != 1 || res.Rows[0]["length"].(int64) != 0x10 {
		t.Fatalf("fixed rows = %+v", res.Rows)
	}
	res, _ = db.Exec("SELECT * FROM warnings")
	if len(res.Rows) != 1 {
		t.Fatalf("warning rows = %+v", res.Rows)
	}
	// Saving twice must fail cleanly (schema exists).
	if err := SaveToDB(db, p); err == nil {
		t.Fatal("second save should fail")
	}
}
