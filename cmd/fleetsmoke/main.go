// Command fleetsmoke is the end-to-end fleet drill `make fleet-smoke`
// runs: it builds ziprd, boots two worker daemons (each with its own
// disk cache) and a consistent-hash gateway over real TCP, plays a
// request set through the gateway, kills one worker mid-run, and
// verifies the fleet contract:
//
//   - every post-kill answer is byte-identical to its pre-kill answer
//     (failover may move work, never change it);
//   - the outage is visible in the gateway's metrics (fleet_retries or
//     an open circuit in /fleet);
//   - a worker restarted with an empty RAM cache answers a
//     previously-seen input from its disk tier without a pipeline run.
//
// It exits 0 on success and 1 with a diagnostic on any violation.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"zipr/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsmoke:", err)
		os.Exit(1)
	}
	fmt.Println("fleetsmoke: ok")
}

// freePort reserves and releases a TCP port on the loopback.
func freePort() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}

// waitHealthy polls addr's /healthz until it answers or the budget
// runs out.
func waitHealthy(addr string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("%s never became healthy", addr)
}

// daemonProc is one spawned ziprd.
type daemonProc struct {
	cmd  *exec.Cmd
	addr string
}

func start(bin string, addr string, args ...string) (*daemonProc, error) {
	cmd := exec.Command(bin, append([]string{"-listen", addr}, args...)...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &daemonProc{cmd: cmd, addr: addr}, nil
}

func (d *daemonProc) stop() {
	if d == nil || d.cmd.Process == nil {
		return
	}
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// rewrite posts one input through addr and returns the response body.
func rewrite(addr string, input []byte) ([]byte, int, error) {
	resp, err := http.Post("http://"+addr+"/rewrite?transforms=cfi", "application/octet-stream", bytes.NewReader(input))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, err
}

// statsOf decodes addr's /stats counters.
func statsOf(addr string) (map[string]json.RawMessage, error) {
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

func intStat(m map[string]json.RawMessage, key string) int64 {
	var v int64
	json.Unmarshal(m[key], &v)
	return v
}

func run() error {
	work, err := os.MkdirTemp("", "fleetsmoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	bin := filepath.Join(work, "ziprd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/ziprd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build ziprd: %w", err)
	}

	// Inputs: a handful of synthetic programs, enough that the ring
	// spreads them across both workers.
	var inputs [][]byte
	for i := 0; i < 8; i++ {
		seed, prof := synth.CBProfile(i)
		b, err := synth.Build(seed, prof)
		if err != nil {
			return err
		}
		img, err := b.Marshal()
		if err != nil {
			return err
		}
		inputs = append(inputs, img)
	}

	addrA, err := freePort()
	if err != nil {
		return err
	}
	addrB, err := freePort()
	if err != nil {
		return err
	}
	addrG, err := freePort()
	if err != nil {
		return err
	}
	diskA, diskB := filepath.Join(work, "diskA"), filepath.Join(work, "diskB")

	wa, err := start(bin, addrA, "-disk-cache", diskA)
	if err != nil {
		return err
	}
	defer wa.stop()
	wb, err := start(bin, addrB, "-disk-cache", diskB)
	if err != nil {
		return err
	}
	defer wb.stop()
	gw, err := start(bin, addrG, "-gateway", addrA+","+addrB)
	if err != nil {
		return err
	}
	defer gw.stop()
	for _, a := range []string{addrA, addrB, addrG} {
		if err := waitHealthy(a); err != nil {
			return err
		}
	}

	// Round 1: collect the fleet's answers while both workers are up.
	digests := make([][32]byte, len(inputs))
	for i, in := range inputs {
		out, code, err := rewrite(addrG, in)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("round 1 input %d: status %d err %v", i, code, err)
		}
		digests[i] = sha256.Sum256(out)
	}
	// Both workers should have seen work.
	stA, err := statsOf(addrA)
	if err != nil {
		return err
	}
	stB, err := statsOf(addrB)
	if err != nil {
		return err
	}
	runsA, runsB := intStat(stA, "PipelineRuns"), intStat(stB, "PipelineRuns")
	if runsA == 0 || runsB == 0 {
		return fmt.Errorf("load did not shard: pipeline runs %d/%d", runsA, runsB)
	}

	// Kill worker A mid-run. Every answer must stay byte-identical —
	// served by B, rerunning the pipeline where it has to.
	wa.stop()
	for i, in := range inputs {
		out, code, err := rewrite(addrG, in)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("post-kill input %d: status %d err %v", i, code, err)
		}
		if sha256.Sum256(out) != digests[i] {
			return fmt.Errorf("post-kill input %d: answer diverged", i)
		}
	}
	// The outage is observable: retries counted, or A's circuit open.
	mresp, err := http.Get("http://" + addrG + "/metrics")
	if err != nil {
		return err
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	fresp, err := http.Get("http://" + addrG + "/fleet")
	if err != nil {
		return err
	}
	fraw, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if !bytes.Contains(mraw, []byte("zipr_fleet_retries")) {
		return fmt.Errorf("gateway /metrics lacks the fleet_retries family:\n%s", mraw)
	}
	if !bytes.Contains(fraw, []byte(`"open"`)) && !bytes.Contains(mraw, []byte("zipr_fleet_worker_up{")) {
		return fmt.Errorf("outage not visible in /fleet or worker-up gauges:\n%s", fraw)
	}

	// Restart worker B with an empty RAM cache on the same disk tier: a
	// previously-seen input must answer as a disk hit, no pipeline run.
	// After the kill round B served every input, so all of them are in
	// its disk tier; use the first.
	servedByB := 0
	wb.stop()
	wb2, err := start(bin, addrB, "-disk-cache", diskB)
	if err != nil {
		return err
	}
	defer wb2.stop()
	if err := waitHealthy(addrB); err != nil {
		return err
	}
	before, err := statsOf(addrB)
	if err != nil {
		return err
	}
	out, code, err := rewrite(addrB, inputs[servedByB])
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("restarted worker: status %d err %v", code, err)
	}
	if sha256.Sum256(out) != digests[servedByB] {
		return fmt.Errorf("restarted worker answered divergent bytes")
	}
	after, err := statsOf(addrB)
	if err != nil {
		return err
	}
	if intStat(after, "PipelineRuns") != intStat(before, "PipelineRuns") {
		return fmt.Errorf("restarted worker reran the pipeline instead of hitting its disk tier")
	}
	if intStat(after, "DiskHits") == 0 {
		return fmt.Errorf("restarted worker reported no disk hits")
	}
	return nil
}
