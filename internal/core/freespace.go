package core

import (
	"fmt"
	"sort"

	"zipr/internal/ir"
)

// FreeSpace tracks the unallocated byte ranges of the rewritten text
// segment. It starts as the original text range minus fixed regions;
// pinned references, chains, sleds and dollops carve pieces out of it,
// and inline-pin placement can return unused tails.
type FreeSpace struct {
	blocks []ir.Range // sorted by Start, disjoint, non-empty
}

// NewFreeSpace creates a manager covering whole minus the holes.
func NewFreeSpace(whole ir.Range, holes []ir.Range) *FreeSpace {
	fs := &FreeSpace{}
	cur := whole.Start
	for _, h := range ir.MergeRanges(holes) {
		if h.Start > cur {
			end := h.Start
			if end > whole.End {
				end = whole.End
			}
			if end > cur {
				fs.blocks = append(fs.blocks, ir.Range{Start: cur, End: end})
			}
		}
		if h.End > cur {
			cur = h.End
		}
	}
	if cur < whole.End {
		fs.blocks = append(fs.blocks, ir.Range{Start: cur, End: whole.End})
	}
	return fs
}

// Blocks returns a copy of the current free blocks, sorted by address.
func (fs *FreeSpace) Blocks() []ir.Range {
	return append([]ir.Range(nil), fs.blocks...)
}

// TotalFree returns the number of free bytes.
func (fs *FreeSpace) TotalFree() int {
	total := 0
	for _, b := range fs.blocks {
		total += int(b.Len())
	}
	return total
}

// Largest returns the biggest free block.
func (fs *FreeSpace) Largest() (ir.Range, bool) {
	var best ir.Range
	found := false
	for _, b := range fs.blocks {
		if !found || b.Len() > best.Len() {
			best, found = b, true
		}
	}
	return best, found
}

// blockIndexContaining finds the block containing r, or -1.
func (fs *FreeSpace) blockIndexContaining(r ir.Range) int {
	idx := sort.Search(len(fs.blocks), func(i int) bool { return fs.blocks[i].End > r.Start })
	if idx < len(fs.blocks) {
		b := fs.blocks[idx]
		if r.Start >= b.Start && r.End <= b.End {
			return idx
		}
	}
	return -1
}

// Contains reports whether r is entirely free.
func (fs *FreeSpace) Contains(r ir.Range) bool {
	return fs.blockIndexContaining(r) >= 0
}

// Carve removes r, which must lie entirely inside one free block.
func (fs *FreeSpace) Carve(r ir.Range) error {
	if r.Start >= r.End {
		return fmt.Errorf("core: carve of empty range %+v", r)
	}
	idx := fs.blockIndexContaining(r)
	if idx < 0 {
		return fmt.Errorf("core: carve %+v not in free space", r)
	}
	b := fs.blocks[idx]
	var repl []ir.Range
	if b.Start < r.Start {
		repl = append(repl, ir.Range{Start: b.Start, End: r.Start})
	}
	if r.End < b.End {
		repl = append(repl, ir.Range{Start: r.End, End: b.End})
	}
	fs.blocks = append(fs.blocks[:idx], append(repl, fs.blocks[idx+1:]...)...)
	return nil
}

// Release returns r to the free pool, merging with neighbors.
func (fs *FreeSpace) Release(r ir.Range) {
	if r.Start >= r.End {
		return
	}
	fs.blocks = ir.MergeRanges(append(fs.blocks, r))
}

// BlockStartingAt returns the free block that begins exactly at addr.
func (fs *FreeSpace) BlockStartingAt(addr uint32) (ir.Range, bool) {
	for _, b := range fs.blocks {
		if b.Start == addr {
			return b, true
		}
		if b.Start > addr {
			break
		}
	}
	return ir.Range{}, false
}

// FindWithin returns the lowest free range of exactly size bytes that
// lies wholly inside window, if any.
func (fs *FreeSpace) FindWithin(window ir.Range, size uint32) (ir.Range, bool) {
	for _, b := range fs.blocks {
		lo := b.Start
		if lo < window.Start {
			lo = window.Start
		}
		hi := b.End
		if hi > window.End {
			hi = window.End
		}
		if hi > lo && hi-lo >= size {
			return ir.Range{Start: lo, End: lo + size}, true
		}
	}
	return ir.Range{}, false
}
