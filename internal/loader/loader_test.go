package loader

import (
	"strings"
	"testing"

	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/vm"
)

func mustAssemble(t *testing.T, src string) *binfmt.Binary {
	t.Helper()
	bin, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

const exeSrc = `
.type exec
.lib "la"
.import la_fn, got_a
.text 0x00100000
main:
    movi r1, 4
    movi r5, got_a
    load r5, [r5]
    callr r5
    movi r0, 1
    syscall
.data 0x00200000
got_a: .word 0
`

const libASrc = `
.type lib
.lib "lb"
.import lb_fn, got_b
.text 0x00700000
fa:
    push r9
    movi r9, got_b
    load r9, [r9]
    callr r9
    addi r1, 1
    pop r9
    ret
.export la_fn = fa
.data 0x00780000
got_b: .word 0
`

const libBSrc = `
.type lib
.text 0x00710000
fb:
    add r1, r1
    ret
.export lb_fn = fb
`

func TestTransitiveLoadingAndResolution(t *testing.T) {
	exe := mustAssemble(t, exeSrc)
	la := mustAssemble(t, libASrc)
	lb := mustAssemble(t, libBSrc)

	m := vm.New(vm.WithMaxSteps(10_000))
	err := Load(m, exe, map[string]*binfmt.Binary{"la": la, "lb": lb})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 4*2 (lb) + 1 (la) = 9.
	if res.ExitCode != 9 {
		t.Fatalf("exit = %d, want 9", res.ExitCode)
	}
}

func TestMissingLibrary(t *testing.T) {
	exe := mustAssemble(t, exeSrc)
	m := vm.New()
	err := Load(m, exe, nil)
	if err == nil || !strings.Contains(err.Error(), "missing library") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnresolvedImport(t *testing.T) {
	exe := mustAssemble(t, exeSrc)
	badLib := mustAssemble(t, `
.type lib
.text 0x00700000
f: ret
.export wrong_name = f
`)
	m := vm.New()
	err := Load(m, exe, map[string]*binfmt.Binary{"la": badLib})
	if err == nil || !strings.Contains(err.Error(), "unresolved import") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateExport(t *testing.T) {
	exe := mustAssemble(t, `
.type exec
.lib "l1"
.lib "l2"
.text 0x00100000
main:
    movi r0, 1
    movi r1, 0
    syscall
`)
	l1 := mustAssemble(t, ".type lib\n.text 0x00700000\nf: ret\n.export dup = f\n")
	l2 := mustAssemble(t, ".type lib\n.text 0x00710000\nf: ret\n.export dup = f\n")
	m := vm.New()
	err := Load(m, exe, map[string]*binfmt.Binary{"l1": l1, "l2": l2})
	if err == nil || !strings.Contains(err.Error(), "duplicate export") {
		t.Fatalf("err = %v", err)
	}
}

func TestOverlappingMappings(t *testing.T) {
	exe := mustAssemble(t, `
.type exec
.lib "clash"
.text 0x00100000
main:
    movi r0, 1
    movi r1, 0
    syscall
`)
	// Library deliberately mapped on top of the executable.
	clash := mustAssemble(t, ".type lib\n.text 0x00100000\nf: ret\n.export c_fn = f\n")
	m := vm.New()
	err := Load(m, exe, map[string]*binfmt.Binary{"clash": clash})
	if err == nil || !strings.Contains(err.Error(), "map segment") {
		t.Fatalf("err = %v", err)
	}
}

func TestEntrySetAfterLoad(t *testing.T) {
	exe := mustAssemble(t, `
.type exec
.text 0x00100000
pad: nop
main:
    movi r0, 1
    movi r1, 77
    syscall
.entry main
`)
	m := vm.New(vm.WithMaxSteps(100))
	if err := Load(m, exe, nil); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 77 {
		t.Fatalf("exit = %d: PC not set to entry", res.ExitCode)
	}
}
