package isa

// Negative decode coverage for the fixed-width codec, mirroring the
// positive completeness gate in roundtrip_test.go: every opcode ZVM-64
// defines is decoded at every misaligned address and with every
// truncated tail, and each case must fail with the right typed error —
// ErrMisaligned for bad addresses, ErrTruncated for short buffers —
// never a garbage instruction or a panic. A new opcode added to
// zvm64Form is covered here automatically.

import (
	"errors"
	"testing"
)

// zvm64Sample builds one canonically-encodable instance of op.
func zvm64Sample(t *testing.T, op Op) Inst {
	t.Helper()
	in := Inst{Op: op}
	switch zvm64Form[op] {
	case zImm8, zRegImm8:
		in.Imm = 5
	case zBranch:
		if op == OpJcc32 {
			in.Cc = CcZ
		}
		in.Imm = 64 // word-aligned, in reach
	case zImm32, zRegImm32, zRegRel32, zMem:
		in.Imm = 0x12345678
	}
	return in
}

func TestZVM64DecodeMisaligned(t *testing.T) {
	for op := Op(1); op < opMax; op++ {
		if zvm64Form[op] == 0 {
			continue
		}
		enc, err := ZVM64.Encode(zvm64Sample(t, op))
		if err != nil {
			t.Fatalf("%s: encode: %v", op.Name(), err)
		}
		for _, addr := range []uint32{1, 2, 3, 0x1001, 0xFFFFFFFE} {
			if addr%ZVM64Align == 0 {
				continue
			}
			if _, err := ZVM64.Decode(enc, addr); !errors.Is(err, ErrMisaligned) {
				t.Errorf("%s: Decode at %#x = %v, want ErrMisaligned", op.Name(), addr, err)
			}
		}
	}
}

func TestZVM64DecodeTruncated(t *testing.T) {
	for op := Op(1); op < opMax; op++ {
		if zvm64Form[op] == 0 {
			continue
		}
		in := zvm64Sample(t, op)
		enc, err := ZVM64.Encode(in)
		if err != nil {
			t.Fatalf("%s: encode: %v", op.Name(), err)
		}
		if want := ZVM64.InstLen(in); len(enc) != want {
			t.Fatalf("%s: encoded %d bytes, InstLen says %d", op.Name(), len(enc), want)
		}
		for cut := 0; cut < len(enc); cut++ {
			if _, err := ZVM64.Decode(enc[:cut], 0); !errors.Is(err, ErrTruncated) {
				t.Errorf("%s: Decode of %d/%d bytes = %v, want ErrTruncated",
					op.Name(), cut, len(enc), err)
			}
		}
		// The untruncated buffer must still decode to the sample — the
		// negative sweep is meaningless if the base case is broken.
		got, err := ZVM64.Decode(enc, 0)
		if err != nil {
			t.Errorf("%s: full decode failed: %v", op.Name(), err)
		} else if got != in {
			t.Errorf("%s: full decode = %+v, want %+v", op.Name(), got, in)
		}
	}
}

// TestZVM64DecodeReservedBits: flipping any reserved-zero bit of a
// canonical narrow word must decode as ErrBadEncoding (the canonical-
// encoding property the disassembler's data/code discrimination leans
// on), and an undefined primary byte as ErrBadOpcode.
func TestZVM64DecodeReservedBits(t *testing.T) {
	for op := Op(1); op < opMax; op++ {
		f := zvm64Form[op]
		if f == 0 || zvm64Wide(f) {
			continue
		}
		enc, err := ZVM64.Encode(zvm64Sample(t, op))
		if err != nil {
			t.Fatalf("%s: encode: %v", op.Name(), err)
		}
		// Pick one reserved bit per narrow form.
		var flip byte
		var at int
		switch f {
		case zNone:
			flip, at = 0x10, 1 // rd nibble must be zero
		case zReg, zRegImm8:
			flip, at = 0x10, 1 // rs nibble must be zero
		case zImm8:
			flip, at = 0x01, 1 // rd nibble must be zero
		case zRegReg:
			flip, at = 0x01, 2 // imm16 must be zero
		case zBranch:
			flip, at = 0x10, 1 // the reserved branch bit
		}
		bad := append([]byte(nil), enc...)
		bad[at] ^= flip
		if _, err := ZVM64.Decode(bad, 0); !errors.Is(err, ErrBadEncoding) {
			t.Errorf("%s: reserved-bit decode = %v, want ErrBadEncoding", op.Name(), err)
		}
	}
	// An opcode byte with no ZVM-64 assignment.
	if _, err := ZVM64.Decode([]byte{0xFF, 0, 0, 0}, 0); !errors.Is(err, ErrBadOpcode) {
		t.Errorf("undefined opcode decode = %v, want ErrBadOpcode", err)
	}
}
