// Package isa defines ZVM-32, the 32-bit virtual instruction set this
// repository rewrites. ZVM-32 is designed to present every difficulty the
// Zipr paper (DSN 2017) solves on x86: variable-length encodings (1-7
// bytes), span-dependent PC-relative branches with short (rel8) and long
// (rel32) forms, PC-relative address formation and loads, indirect jumps
// and calls, and a byte-level encoding that deliberately reuses x86's
// 0x68 (push imm32), 0x90 (nop) and 0xF4 (hlt) opcode values so that the
// paper's "sled" construction for dense references works byte-for-byte.
//
// Machine model: sixteen 32-bit registers r0..r15 (r15 is the stack
// pointer, named sp), three comparison flags (Z zero, LT signed-less,
// B unsigned-below), a flat 32-bit byte-addressable address space, and a
// descending full stack. CALL pushes the return address; RET pops it.
// All branch displacements are relative to the address of the *next*
// instruction, exactly as on x86.
package isa

import "fmt"

// Register indices. SP is the conventional stack pointer.
const (
	// NumRegs is the number of general-purpose registers.
	NumRegs = 16
	// SP is the register index used as the stack pointer.
	SP = 15
)

// Op identifies a ZVM-32 operation, independent of its encoded form.
type Op uint8

// Operations. The zero value is OpInvalid so that a zeroed Inst is
// detectably invalid.
const (
	OpInvalid Op = iota

	// No-operand instructions.
	OpNop     // no operation
	OpHlt     // halt the machine (abnormal stop outside a syscall)
	OpRet     // pop return address, jump to it
	OpSyscall // operating-environment call; number in r0, args r1..r4

	// Single-register instructions.
	OpPush  // push Rd
	OpPop   // pop into Rd
	OpJmpR  // indirect jump to the address in Rd
	OpCallR // indirect call to the address in Rd
	OpInc   // Rd++, sets flags vs. zero
	OpDec   // Rd--, sets flags vs. zero
	OpNot   // Rd = ^Rd

	// Immediate pushes.
	OpPushI8  // push sign-extended 8-bit immediate
	OpPushI32 // push 32-bit immediate (encoded 0x68, sled-compatible)

	// Direct control transfers (Imm is the relative displacement).
	OpJmp8  // unconditional jump, rel8
	OpJmp32 // unconditional jump, rel32
	OpCall  // call, rel32
	OpJcc8  // conditional jump, rel8 (condition in Cc)
	OpJcc32 // conditional jump, rel32 (condition in Cc)

	// Register-register ALU (Rd = Rd op Rs; flags set vs. zero, except Cmp).
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpMul
	OpDiv // unsigned divide; divide-by-zero faults the machine
	OpMod // unsigned remainder; divide-by-zero faults the machine
	OpShl
	OpShr
	OpCmp // compare Rd with Rs: sets Z, LT, B; registers unchanged
	OpMov // Rd = Rs

	// Register-imm8 ALU.
	OpAddI8 // Rd += sign-extended imm8
	OpCmpI8 // compare Rd with sign-extended imm8
	OpShlI  // Rd <<= imm8
	OpShrI  // Rd >>= imm8 (logical)

	// Register-imm32 ALU.
	OpMovI // Rd = imm32
	OpAddI // Rd += imm32
	OpAndI // Rd &= imm32
	OpOrI  // Rd |= imm32
	OpXorI // Rd ^= imm32
	OpCmpI // compare Rd with imm32

	// PC-relative (Imm is displacement from the next instruction).
	OpLea    // Rd = PC_next + disp32: address formation
	OpLoadPC // Rd = mem32[PC_next + disp32]

	// Memory (Imm is a signed 32-bit displacement from the base register).
	OpLoad   // Rd = mem32[Rs + disp32]
	OpLoadB  // Rd = zero-extended mem8[Rs + disp32]
	OpStore  // mem32[Rd + disp32] = Rs
	OpStoreB // mem8[Rd + disp32] = low byte of Rs

	opMax // sentinel; keep last
)

// Cc is a branch condition code for OpJcc8/OpJcc32. The numeric values
// mirror x86 condition encodings so conditional long jumps encode as
// 0x0F, 0x80+cc, rel32.
type Cc uint8

// Condition codes.
const (
	CcB  Cc = 0x2 // below (unsigned <)
	CcAE Cc = 0x3 // above or equal (unsigned >=)
	CcZ  Cc = 0x4 // zero / equal
	CcNZ Cc = 0x5 // not zero / not equal
	CcL  Cc = 0xC // less (signed <)
	CcGE Cc = 0xD // greater or equal (signed >=)
	CcLE Cc = 0xE // less or equal (signed <=)
	CcG  Cc = 0xF // greater (signed >)
)

// ccNames maps condition codes to their mnemonic suffixes.
var ccNames = map[Cc]string{
	CcB: "b", CcAE: "ae", CcZ: "z", CcNZ: "nz",
	CcL: "l", CcGE: "ge", CcLE: "le", CcG: "g",
}

// ValidCc reports whether cc is a defined condition code.
func ValidCc(cc Cc) bool {
	_, ok := ccNames[cc]
	return ok
}

// CcName returns the mnemonic suffix ("z", "nz", ...) for cc, or "?" if
// cc is not a defined condition.
func CcName(cc Cc) string {
	if s, ok := ccNames[cc]; ok {
		return s
	}
	return "?"
}

// Negate returns the logically opposite condition (Z <-> NZ, L <-> GE, ...).
func (c Cc) Negate() Cc { return c ^ 1 }

// Well-known opcode byte values. These are exported because the paper's
// sled construction depends on the literal byte values: a run of
// PushI32Byte opcodes terminated by NopBytes re-synchronizes execution no
// matter which byte control lands on.
const (
	PushI32Byte = 0x68 // opcode byte of OpPushI32 (x86 "push imm32")
	NopByte     = 0x90 // opcode byte of OpNop     (x86 "nop")
	HltByte     = 0xF4 // opcode byte of OpHlt     (x86 "hlt")
	Jcc32Prefix = 0x0F // first byte of OpJcc32    (x86 two-byte escape)
)

// form describes the encoded shape of an instruction.
type form uint8

const (
	fNone     form = iota + 1 // [op]
	fReg                      // [op][reg]
	fImm8                     // [op][imm8]
	fRel8                     // [op][rel8]
	fRegReg                   // [op][rd][rs]
	fRegImm8                  // [op][rd][imm8]
	fImm32                    // [op][imm32]
	fRel32                    // [op][rel32]
	fRegImm32                 // [op][rd][imm32]
	fRegRel32                 // [op][rd][rel32]   (PC-relative)
	fCc8                      // [0x70+cc][rel8]
	fCc32                     // [0x0F][0x80+cc][rel32]
	fMem                      // [op][ra][rb][disp32]
)

// formLen gives the encoded length in bytes of each form.
var formLen = map[form]int{
	fNone: 1, fReg: 2, fImm8: 2, fRel8: 2, fRegReg: 3, fRegImm8: 3,
	fImm32: 5, fRel32: 5, fRegImm32: 6, fRegRel32: 6, fCc8: 2, fCc32: 6,
	fMem: 7,
}

// opInfo is the static description of one operation.
type opInfo struct {
	name string
	byte uint8 // primary opcode byte (unused for fCc8/fCc32)
	form form
}

// opTable drives both the encoder and the decoder.
var opTable = [opMax]opInfo{
	OpNop:     {"nop", NopByte, fNone},
	OpHlt:     {"hlt", HltByte, fNone},
	OpRet:     {"ret", 0xC3, fNone},
	OpSyscall: {"syscall", 0xF5, fNone},

	OpPush:  {"push", 0x51, fReg},
	OpPop:   {"pop", 0x59, fReg},
	OpJmpR:  {"jmpr", 0xFE, fReg},
	OpCallR: {"callr", 0xFD, fReg},
	OpInc:   {"inc", 0x40, fReg},
	OpDec:   {"dec", 0x48, fReg},
	OpNot:   {"not", 0xF8, fReg},

	OpPushI8:  {"push8", 0x6A, fImm8},
	OpPushI32: {"pushi", PushI32Byte, fImm32},

	OpJmp8:  {"jmp.s", 0xEB, fRel8},
	OpJmp32: {"jmp", 0xE9, fRel32},
	OpCall:  {"call", 0xE8, fRel32},
	OpJcc8:  {"jcc.s", 0x70, fCc8},
	OpJcc32: {"jcc", Jcc32Prefix, fCc32},

	OpAdd: {"add", 0x01, fRegReg},
	OpSub: {"sub", 0x29, fRegReg},
	OpAnd: {"and", 0x21, fRegReg},
	OpOr:  {"or", 0x09, fRegReg},
	OpXor: {"xor", 0x31, fRegReg},
	OpMul: {"mul", 0xAF, fRegReg},
	OpDiv: {"div", 0xF6, fRegReg},
	OpMod: {"mod", 0x99, fRegReg},
	OpShl: {"shl", 0xD3, fRegReg},
	OpShr: {"shr", 0xD2, fRegReg},
	OpCmp: {"cmp", 0x39, fRegReg},
	OpMov: {"mov", 0x89, fRegReg},

	OpAddI8: {"addi8", 0x83, fRegImm8},
	OpCmpI8: {"cmpi8", 0x3C, fRegImm8},
	OpShlI:  {"shli", 0xC1, fRegImm8},
	OpShrI:  {"shri", 0xC8, fRegImm8},

	OpMovI: {"movi", 0xB8, fRegImm32},
	OpAddI: {"addi", 0x81, fRegImm32},
	OpAndI: {"andi", 0x25, fRegImm32},
	OpOrI:  {"ori", 0x0D, fRegImm32},
	OpXorI: {"xori", 0x35, fRegImm32},
	OpCmpI: {"cmpi", 0x3D, fRegImm32},

	OpLea:    {"lea", 0x8D, fRegRel32},
	OpLoadPC: {"loadpc", 0x8E, fRegRel32},

	OpLoad:   {"load", 0x8B, fMem},
	OpLoadB:  {"loadb", 0x8A, fMem},
	OpStore:  {"store", 0x87, fMem},
	OpStoreB: {"storeb", 0x86, fMem},
}

// byteToOp maps a primary opcode byte back to its operation for the
// decoder. Conditional branches are handled separately because their
// condition is folded into the opcode byte (fCc8) or a second byte (fCc32).
var byteToOp = buildByteToOp()

func buildByteToOp() [256]Op {
	var t [256]Op
	for op := Op(1); op < opMax; op++ {
		info := opTable[op]
		if info.form == 0 || info.form == fCc8 || info.form == fCc32 {
			continue
		}
		t[info.byte] = op
	}
	return t
}

// Name returns the canonical mnemonic for op ("jcc" family names exclude
// the condition; use Inst.String for fully rendered mnemonics).
func (op Op) Name() string {
	if op == OpInvalid || op >= opMax || opTable[op].form == 0 {
		return "invalid"
	}
	return opTable[op].name
}

// Valid reports whether op names a defined operation.
func (op Op) Valid() bool {
	return op > OpInvalid && op < opMax && opTable[op].form != 0
}

// Inst is a single decoded (or to-be-encoded) instruction.
type Inst struct {
	Op Op
	Cc Cc    // condition for OpJcc8/OpJcc32
	Rd uint8 // destination / first register operand
	Rs uint8 // source / second register operand
	// Imm holds, depending on Op: an immediate, a signed memory
	// displacement, or a branch/PC displacement relative to the next
	// instruction.
	Imm int32
}

// Len returns the encoded length of the instruction in bytes, or 0 when
// the instruction is invalid.
func (in Inst) Len() int {
	if !in.Op.Valid() {
		return 0
	}
	return formLen[opTable[in.Op].form]
}

// IsBranch reports whether the instruction is any control transfer other
// than a fallthrough (direct or indirect jump, call, or return).
func (in Inst) IsBranch() bool {
	switch in.Op {
	case OpJmp8, OpJmp32, OpJcc8, OpJcc32, OpCall, OpJmpR, OpCallR, OpRet:
		return true
	}
	return false
}

// IsDirectBranch reports whether the instruction transfers control to a
// statically encoded relative target.
func (in Inst) IsDirectBranch() bool {
	switch in.Op {
	case OpJmp8, OpJmp32, OpJcc8, OpJcc32, OpCall:
		return true
	}
	return false
}

// IsIndirectBranch reports whether the target is computed at run time.
// RET is included: its target comes from the stack.
func (in Inst) IsIndirectBranch() bool {
	switch in.Op {
	case OpJmpR, OpCallR, OpRet:
		return true
	}
	return false
}

// IsCall reports whether the instruction is a direct or indirect call.
func (in Inst) IsCall() bool { return in.Op == OpCall || in.Op == OpCallR }

// HasFallthrough reports whether execution can continue at the next
// sequential instruction. Unconditional jumps, returns and hlt do not
// fall through; calls do (they return).
func (in Inst) HasFallthrough() bool {
	switch in.Op {
	case OpJmp8, OpJmp32, OpJmpR, OpRet, OpHlt:
		return false
	}
	return true
}

// IsPCRelData reports whether the instruction forms or loads from a
// PC-relative address (the mandatory-transform targets besides branches).
func (in Inst) IsPCRelData() bool { return in.Op == OpLea || in.Op == OpLoadPC }

// TargetAddr returns the absolute target address of a direct branch or
// PC-relative data reference decoded at address addr. The second result
// is false for instructions without a static target.
func (in Inst) TargetAddr(addr uint32) (uint32, bool) {
	switch in.Op {
	case OpJmp8, OpJmp32, OpJcc8, OpJcc32, OpCall, OpLea, OpLoadPC:
		return addr + uint32(in.Len()) + uint32(in.Imm), true
	}
	return 0, false
}

// String renders the instruction in the assembler's syntax.
func (in Inst) String() string {
	if !in.Op.Valid() {
		return "(invalid)"
	}
	reg := func(r uint8) string {
		if r == SP {
			return "sp"
		}
		return fmt.Sprintf("r%d", r)
	}
	switch opTable[in.Op].form {
	case fNone:
		return in.Op.Name()
	case fReg:
		return fmt.Sprintf("%s %s", in.Op.Name(), reg(in.Rd))
	case fImm8, fImm32:
		return fmt.Sprintf("%s %d", in.Op.Name(), in.Imm)
	case fRel8, fRel32:
		return fmt.Sprintf("%s %+d", in.Op.Name(), in.Imm)
	case fCc8:
		return fmt.Sprintf("j%s.s %+d", CcName(in.Cc), in.Imm)
	case fCc32:
		return fmt.Sprintf("j%s %+d", CcName(in.Cc), in.Imm)
	case fRegReg:
		return fmt.Sprintf("%s %s, %s", in.Op.Name(), reg(in.Rd), reg(in.Rs))
	case fRegImm8, fRegImm32:
		return fmt.Sprintf("%s %s, %d", in.Op.Name(), reg(in.Rd), in.Imm)
	case fRegRel32:
		return fmt.Sprintf("%s %s, %+d", in.Op.Name(), reg(in.Rd), in.Imm)
	case fMem:
		switch in.Op {
		case OpStore, OpStoreB:
			return fmt.Sprintf("%s [%s%+d], %s", in.Op.Name(), reg(in.Rd), in.Imm, reg(in.Rs))
		default:
			return fmt.Sprintf("%s %s, [%s%+d]", in.Op.Name(), reg(in.Rd), reg(in.Rs), in.Imm)
		}
	}
	return "(invalid)"
}
