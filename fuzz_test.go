package zipr

// Native-fuzzing form of the pipeline equivalence property: the fuzzer
// owns the program shape (via a synth seed), the transform stack, the
// layout, and the program input, and the invariant is the paper's — a
// rewritten binary's transcript must match the original's on every
// input. `make fuzzsmoke` runs this for a bounded time in CI;
// `go test -fuzz FuzzPipelineEquivalence .` explores open-endedly.

import (
	"bytes"
	"math/rand"
	"testing"

	"zipr/internal/synth"
)

func FuzzPipelineEquivalence(f *testing.F) {
	f.Add(int64(1), byte(0x00), byte(0), []byte{0, 1, 2, 3})
	f.Add(int64(7), byte(0x10), byte(1), []byte{9, 9, 9, 9, 1, 2})
	f.Add(int64(42), byte(0x1f), byte(2), []byte{0xff, 0x00, 0x7f, 0x80})
	f.Fuzz(func(t *testing.T, seed int64, stackBits, layoutSel byte, input []byte) {
		r := rand.New(rand.NewSource(seed))
		profile := synth.Profile{
			Name:             "fuzz",
			NumFuncs:         4 + r.Intn(12),
			OpsMin:           2 + r.Intn(4),
			OpsMax:           8 + r.Intn(12),
			HandwrittenFrac:  r.Float64() * 0.6,
			FuncPtrTableFrac: r.Float64() * 0.5,
			DataWords:        16 + r.Intn(128),
			InputLen:         4 + r.Intn(12),
			LoopIters:        2 + r.Intn(8),
		}
		orig, err := synth.Build(seed, profile)
		if err != nil {
			t.Fatalf("synth: %v", err)
		}
		var tfs []Transform
		if stackBits&1 != 0 {
			tfs = append(tfs, Stir(seed))
		}
		if stackBits&2 != 0 {
			tfs = append(tfs, NopElide())
		}
		if stackBits&4 != 0 {
			tfs = append(tfs, StackPad(32))
		}
		if stackBits&8 != 0 {
			tfs = append(tfs, Canary(uint32(seed)|1))
		}
		if stackBits&16 != 0 {
			tfs = append(tfs, CFI())
		}
		if len(tfs) == 0 {
			tfs = []Transform{Null()}
		}
		layouts := []LayoutKind{LayoutOptimized, LayoutDiversity, LayoutProfileGuided}
		layout := layouts[int(layoutSel)%len(layouts)]

		rw, report, err := RewriteBinary(orig.Clone(), Config{
			Transforms: tfs,
			Layout:     layout,
			Seed:       seed,
		})
		if err != nil {
			t.Fatalf("rewrite (bits=%#x, %s): %v", stackBits, layout, err)
		}

		// The program reads exactly InputLen bytes; pad or trim the
		// fuzzed input so both runs see the same transcript-relevant
		// bytes.
		in := make([]byte, profile.InputLen)
		copy(in, input)
		want, err1 := execute(t, orig, nil, string(in))
		got, err2 := execute(t, rw, nil, string(in))
		if err1 != nil {
			t.Fatalf("original faulted: %v", err1)
		}
		if err2 != nil {
			t.Fatalf("rewritten faulted (bits=%#x, %s, stats %+v): %v",
				stackBits, layout, report.Stats, err2)
		}
		if want.ExitCode != got.ExitCode || !bytes.Equal(want.Output, got.Output) {
			t.Fatalf("diverged on input %x (bits=%#x, %s): exit %d/%d output %x/%x",
				in, stackBits, layout, want.ExitCode, got.ExitCode, want.Output, got.Output)
		}
	})
}
