package disasm

import (
	"zipr/internal/isa"
)

// InstMap is a dense, offset-indexed instruction store over one text
// range. It replaces the address-keyed hash maps the disassemblers used
// to rebuild per pass: a single backing array allocation, O(1) lookups
// without hashing, and — crucially for the parallel pipeline — iteration
// in ascending address order, so every consumer is deterministic without
// collect-and-sort.
//
// Presence is encoded by the instruction itself: isa.Inst's zero value
// has Op == OpInvalid, so a zeroed slot is detectably empty.
type InstMap struct {
	base  uint32
	insts []isa.Inst
	count int
}

// NewInstMap creates an empty map covering n bytes of text starting at
// virtual address base.
func NewInstMap(base uint32, n int) *InstMap {
	return &InstMap{base: base, insts: make([]isa.Inst, n)}
}

// reset repurposes the map for a new text range, reusing the backing
// array when it is large enough (the sync.Pool path).
func (m *InstMap) reset(base uint32, n int) {
	m.base = base
	m.count = 0
	if cap(m.insts) < n {
		m.insts = make([]isa.Inst, n)
		return
	}
	m.insts = m.insts[:n]
	clear(m.insts)
}

// Base returns the first address the map covers.
func (m *InstMap) Base() uint32 { return m.base }

// Len returns the number of instructions recorded.
func (m *InstMap) Len() int {
	if m == nil {
		return 0
	}
	return m.count
}

// Put records an instruction starting at addr, replacing any previous
// entry there. Addresses outside the covered range are ignored.
func (m *InstMap) Put(addr uint32, in isa.Inst) {
	off := addr - m.base
	if off >= uint32(len(m.insts)) {
		return
	}
	if m.insts[off].Op == isa.OpInvalid && in.Op != isa.OpInvalid {
		m.count++
	}
	m.insts[off] = in
}

// Delete removes the instruction starting at addr, if one was
// recorded. The weighted arbitration pass uses it to drop demoted
// candidates from the ambiguous set.
func (m *InstMap) Delete(addr uint32) {
	off := addr - m.base
	if off >= uint32(len(m.insts)) || m.insts[off].Op == isa.OpInvalid {
		return
	}
	m.insts[off] = isa.Inst{}
	m.count--
}

// Get returns the instruction starting at addr, if one was recorded.
func (m *InstMap) Get(addr uint32) (isa.Inst, bool) {
	if m == nil {
		return isa.Inst{}, false
	}
	off := addr - m.base
	if off >= uint32(len(m.insts)) || m.insts[off].Op == isa.OpInvalid {
		return isa.Inst{}, false
	}
	return m.insts[off], true
}

// Has reports whether an instruction starts at addr.
func (m *InstMap) Has(addr uint32) bool {
	_, ok := m.Get(addr)
	return ok
}

// All calls yield for every recorded instruction in ascending address
// order, stopping early if yield returns false. The ordered walk is what
// makes downstream passes (IR node creation, ambiguous-region pinning,
// warning emission) deterministic by construction.
func (m *InstMap) All(yield func(addr uint32, in isa.Inst) bool) {
	if m == nil {
		return
	}
	for off, in := range m.insts {
		if in.Op == isa.OpInvalid {
			continue
		}
		if !yield(m.base+uint32(off), in) {
			return
		}
	}
}
