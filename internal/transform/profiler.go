package transform

import (
	"zipr/internal/ir"
	"zipr/internal/isa"
)

// Profiler instruments every function entry with an execution counter in
// the data extension, supporting the paper's program-optimization use
// case: run the instrumented binary on training inputs, read the
// counters out of the machine, and feed the hot set to the
// profile-guided layout. Counter updates preserve all registers; flags
// are assumed dead at function entry (the standard calling-convention
// assumption the other transforms also make).
type Profiler struct {
	// Counters maps function entry (original address) to the data
	// address of its 32-bit execution counter; populated by Apply.
	Counters map[uint32]uint32
}

var _ Transform = (*Profiler)(nil)

// Name implements Transform.
func (*Profiler) Name() string { return "profiler" }

// Apply implements Transform.
func (t *Profiler) Apply(ctx *Context) error {
	p := ctx.Prog
	t.Counters = make(map[uint32]uint32)
	for _, fn := range ctx.Functions() {
		if fn.Entry == nil || fn.Entry.OrigAddr == 0 {
			continue
		}
		ctr := p.AllocData(4, 4)
		t.Counters[fn.Entry.OrigAddr] = ctr
		instrumentCounter(p, fn.Entry, ctr)
	}
	return nil
}

// instrumentCounter prepends a register-preserving increment of the
// 32-bit counter at addr to the given instruction.
func instrumentCounter(p *ir.Program, at *ir.Instruction, addr uint32) {
	// InsertBefore chain: at becomes the first inserted instruction and
	// the original operation is displaced behind the sequence.
	p.InsertBefore(at, isa.Inst{Op: isa.OpPush, Rd: 0})
	cur := at
	add := func(in isa.Inst) {
		n := p.NewInst(in)
		n.Fallthrough = cur.Fallthrough
		cur.Fallthrough = n
		cur = n
	}
	add(isa.Inst{Op: isa.OpPush, Rd: 1})
	add(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: int32(addr)})
	add(isa.Inst{Op: isa.OpLoad, Rd: 1, Rs: 0, Imm: 0})
	add(isa.Inst{Op: isa.OpInc, Rd: 1})
	add(isa.Inst{Op: isa.OpStore, Rd: 0, Rs: 1, Imm: 0})
	add(isa.Inst{Op: isa.OpPop, Rd: 1})
	add(isa.Inst{Op: isa.OpPop, Rd: 0})
}
