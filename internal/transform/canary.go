package transform

import (
	"fmt"

	"zipr/internal/ir"
	"zipr/internal/isa"
)

// Canary implements the stack-canary hardening the paper's group applied
// with Zipr (Hawkins et al., "Dynamic canary randomization"): each
// protected function pushes a canary word on entry; each return first
// verifies the word and terminates the program on mismatch. It protects
// the return address against linear stack overwrites.
//
// Like StackPad, the transform assumes register argument passing (no
// sp-relative access above the frame) and skips functions that end in
// anything other than plain returns (tail jumps, computed gotos).
type Canary struct {
	// Value is the canary word (default 0x7A437A43).
	Value uint32
}

var _ Transform = Canary{}

// Name implements Transform.
func (Canary) Name() string { return "canary" }

// Params implements Parametric for the rewrite-cache fingerprint.
func (t Canary) Params() string { return fmt.Sprintf("value=%#x", t.Value) }

// Apply implements Transform.
func (t Canary) Apply(ctx *Context) error {
	value := t.Value
	if value == 0 {
		value = 0x7A437A43
	}
	p := ctx.Prog

	// Shared violation handler.
	viol := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: violationExitCode})
	v2 := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
	v3 := p.NewInst(isa.Inst{Op: isa.OpSyscall})
	v4 := p.NewInst(isa.Inst{Op: isa.OpHlt})
	viol.Fallthrough = v2
	v2.Fallthrough = v3
	v3.Fallthrough = v4

	// The function partition also contains fragments rooted at pinned
	// mid-code addresses (the paper's "functions that share code"
	// complication). Pushing a canary at a fragment "entry" that sits
	// between a function's prologue and its epilogue corrupts the stack
	// discipline, so a function is protected only when its body is
	// plausibly a complete prologue-to-epilogue unit:
	//
	//   - it contains a return but no computed goto;
	//   - its entry is not the target of any plain (non-call) branch,
	//     which would mean a loop back over the canary push;
	//   - no non-entry instruction is pinned (indirect entry past the
	//     push);
	//   - its static stack delta (pushes, pops, sp adjustments) is
	//     balanced — a fragment holding an epilogue without its prologue
	//     fails this, standing in for the frame analysis real canary
	//     tools perform.
	branchTargets := map[*ir.Instruction]bool{}
	for _, n := range p.Insts {
		if n.Target != nil && n.Inst.Op != isa.OpCall {
			branchTargets[n.Target] = true
		}
	}

	for _, fn := range ctx.Functions() {
		if fn.Entry == p.Entry {
			// The entry chain is not a called function; nothing returns.
			continue
		}
		if branchTargets[fn.Entry] {
			continue
		}
		var rets []*ir.Instruction
		protectable := true
		delta := int64(0)
		for _, n := range fn.Insts {
			switch n.Inst.Op {
			case isa.OpRet:
				rets = append(rets, n)
			case isa.OpJmpR:
				protectable = false // computed goto: frame shape unknown
			case isa.OpPush, isa.OpPushI8, isa.OpPushI32:
				delta -= 4
			case isa.OpPop:
				delta += 4
			case isa.OpAddI, isa.OpAddI8:
				if n.Inst.Rd == isa.SP {
					delta += int64(n.Inst.Imm)
				}
			case isa.OpMov, isa.OpMovI:
				if n.Inst.Rd == isa.SP {
					protectable = false // wholesale stack switch
				}
			}
			if n != fn.Entry && n.Pinned {
				// A pinned mid-body instruction means the function can be
				// entered indirectly past the canary push; the epilogue
				// check would then fire on legitimate control flow.
				protectable = false
			}
		}
		if len(rets) == 0 || !protectable || delta != 0 {
			continue
		}
		// Each return: verify and drop the canary first. InsertBefore
		// makes the check the target of any branch that jumped to the
		// ret, preserving all paths. Returns are instrumented before the
		// entry so that a single-instruction function (entry == ret)
		// ends up with the canary push ahead of the check chain.
		for _, ret := range rets {
			displacedRet := p.InsertBefore(ret, isa.Inst{Op: isa.OpPush, Rd: 0})
			cur := ret // now holds "push r0"
			add := func(in isa.Inst, target *ir.Instruction) {
				n := p.NewInst(in)
				n.Target = target
				n.Fallthrough = cur.Fallthrough
				cur.Fallthrough = n
				cur = n
			}
			add(isa.Inst{Op: isa.OpLoad, Rd: 0, Rs: isa.SP, Imm: 4}, nil) // canary word
			add(isa.Inst{Op: isa.OpCmpI, Rd: 0, Imm: int32(value)}, nil)
			add(isa.Inst{Op: isa.OpJcc32, Cc: isa.CcNZ}, viol)
			add(isa.Inst{Op: isa.OpPop, Rd: 0}, nil)
			add(isa.Inst{Op: isa.OpAddI8, Rd: isa.SP, Imm: 4}, nil) // drop canary
			_ = displacedRet                                        // the original ret remains the chain tail
		}
		// Entry: push the canary below the return address.
		p.InsertBefore(fn.Entry, isa.Inst{Op: isa.OpPushI32, Imm: int32(value)})
	}
	return nil
}
