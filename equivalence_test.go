package zipr

// Property-based whole-pipeline testing: generate random programs,
// rewrite them under random transform stacks and layouts, and require
// transcript equivalence with the original on multiple inputs. This is
// the strongest correctness statement the repository makes — the paper's
// robustness argument ("any change to program behavior after it has been
// rewritten is the result of our rewriting technique") run as a fuzzer.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"zipr/internal/binfmt"
	"zipr/internal/synth"
)

// randomProfile draws a program shape from the generator's full range.
func randomProfile(r *rand.Rand, idx int) synth.Profile {
	return synth.Profile{
		Name:             fmt.Sprintf("fz%d", idx),
		NumFuncs:         4 + r.Intn(60),
		OpsMin:           2 + r.Intn(6),
		OpsMax:           8 + r.Intn(30),
		HandwrittenFrac:  r.Float64() * 0.6,
		FuncPtrTableFrac: r.Float64() * 0.5,
		DataWords:        16 + r.Intn(512),
		InputLen:         8 + r.Intn(48),
		LoopIters:        4 + r.Intn(24),
		HeapPages:        r.Intn(8),
		BigDollops:       r.Intn(4) == 0,
	}
}

// randomStack draws a transform stack (possibly empty => Null).
func randomStack(r *rand.Rand) ([]Transform, string) {
	var tfs []Transform
	var names string
	maybe := func(name string, t Transform, p float64) {
		if r.Float64() < p {
			tfs = append(tfs, t)
			names += name + "+"
		}
	}
	maybe("stir", Stir(r.Int63()), 0.25)
	maybe("nopelide", NopElide(), 0.25)
	maybe("stackpad", StackPad(int32(16+16*r.Intn(8))), 0.3)
	maybe("canary", Canary(uint32(r.Int63())|1), 0.3)
	maybe("cfi", CFI(), 0.4)
	if len(tfs) == 0 {
		tfs = append(tfs, Null())
		names = "null+"
	}
	return tfs, names[:len(names)-1]
}

func TestPipelineEquivalenceFuzz(t *testing.T) {
	cases := 32
	if testing.Short() {
		cases = 6
	}
	rng := rand.New(rand.NewSource(0xF022))
	for i := 0; i < cases; i++ {
		profile := randomProfile(rng, i)
		seed := rng.Int63()
		orig, err := synth.Build(seed, profile)
		if err != nil {
			t.Fatalf("case %d: build: %v", i, err)
		}
		tfs, stackName := randomStack(rng)
		layout := LayoutOptimized
		if rng.Intn(2) == 1 {
			layout = LayoutDiversity
		}
		label := fmt.Sprintf("case %d (%s, %s, funcs=%d hand=%.2f)",
			i, stackName, layout, profile.NumFuncs, profile.HandwrittenFrac)

		rw, report, err := RewriteBinary(orig.Clone(), Config{
			Transforms: tfs,
			Layout:     layout,
			Seed:       rng.Int63(),
		})
		if err != nil {
			t.Fatalf("%s: rewrite: %v", label, err)
		}
		for trial := 0; trial < 3; trial++ {
			input := make([]byte, profile.InputLen)
			rng.Read(input)
			want, err1 := execute(t, orig, nil, string(input))
			got, err2 := execute(t, rw, nil, string(input))
			if err1 != nil {
				t.Fatalf("%s: original faulted: %v", label, err1)
			}
			if err2 != nil {
				t.Fatalf("%s: rewritten faulted: %v (stats %+v)", label, err2, report.Stats)
			}
			if want.ExitCode != got.ExitCode || !bytes.Equal(want.Output, got.Output) {
				t.Fatalf("%s: diverged on input %x: exit %d/%d output %x/%x",
					label, input, want.ExitCode, got.ExitCode, want.Output, got.Output)
			}
		}
	}
}

// TestDoubleRewrite rewrites a rewritten binary: the output of the
// pipeline must itself be a valid rewriting input (the paper rewrites
// already-stripped, compiler-free binaries; ours must at minimum accept
// its own output).
func TestDoubleRewrite(t *testing.T) {
	seed, profile := synth.CBProfile(5)
	orig, err := synth.Build(seed, profile)
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte{3}, profile.InputLen)
	want := mustRun(t, orig, nil, string(input))

	once, _, err := RewriteBinary(orig.Clone(), Config{Transforms: []Transform{Null()}})
	if err != nil {
		t.Fatal(err)
	}
	twice, _, err := RewriteBinary(once.Clone(), Config{Transforms: []Transform{Null()}})
	if err != nil {
		t.Fatalf("second rewrite: %v", err)
	}
	got := mustRun(t, twice, nil, string(input))
	if got.ExitCode != want.ExitCode || !bytes.Equal(got.Output, want.Output) {
		t.Fatalf("double rewrite diverged: exit %d vs %d", got.ExitCode, want.ExitCode)
	}
}

// TestRewriteDeterministic: identical inputs and config must give
// byte-identical outputs (needed for reproducible builds and the
// evaluation's reproducibility claim).
func TestRewriteDeterministic(t *testing.T) {
	seed, profile := synth.CBProfile(9)
	orig, err := synth.Build(seed, profile)
	if err != nil {
		t.Fatal(err)
	}
	build := func() []byte {
		rw, _, err := RewriteBinary(orig.Clone(), Config{
			Transforms: []Transform{CFI()},
			Layout:     LayoutDiversity,
			Seed:       77,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := rw.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("rewriting is not deterministic")
	}
}

var _ = binfmt.Exec // keep the import for helper signatures
