package zipr

// Per-ISA end-to-end rewrite benchmarks on the libc-scale placement
// stress shape. The pair backs the `make benchgate` fixed-width bar:
// the ZVM-64 pipeline — aligned carves, reach checks, veneer handling,
// wider encodings — must stay within 1.5x of the variable-width
// baseline on the same program shape. Both run the full pipeline
// (disassemble, CFG, transform, reassemble, marshal) so the bar
// catches per-instruction regressions anywhere, not just in placement.

import (
	"testing"

	"zipr/internal/isa"
	"zipr/internal/synth"
)

func benchmarkRewriteStress(b *testing.B, arch isa.Arch, isaName string) {
	bin, err := synth.BuildArch(77, synth.PlacementStressProfile(0.25), arch)
	if err != nil {
		b.Fatal(err)
	}
	img, err := bin.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Transforms: []Transform{Null()}, ISA: isaName}
	if _, _, err := Rewrite(img, cfg); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Rewrite(img, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRewriteStressZVM32(b *testing.B) {
	benchmarkRewriteStress(b, isa.ZVM32, "")
}

func BenchmarkRewriteStressZVM64(b *testing.B) {
	benchmarkRewriteStress(b, isa.ZVM64, "zvm64")
}
