// Package loader maps ZELF executables and their shared libraries into a
// vm.Machine and resolves imports. ZELF binaries are "prelinked": every
// binary records the fixed virtual addresses of its segments, so loading
// is mapping plus GOT patching — the loader looks up each imported symbol
// in the other loaded binaries' export tables and writes the resolved
// address into the importer's 4-byte GOT slot. Code then reaches imports
// with a GOT load followed by an indirect branch, which is why exported
// addresses must be pinned by the rewriter.
package loader

import (
	"fmt"

	"zipr/internal/binfmt"
	"zipr/internal/vm"
	"zipr/internal/zerr"
)

// Load maps exe and every library it (transitively) requires into m,
// resolves all import tables, and sets the machine's PC to the
// executable's entry point. libs maps library name to image. Every
// failure carries the zerr.ErrLoad taxonomy class.
func Load(m *vm.Machine, exe *binfmt.Binary, libs map[string]*binfmt.Binary) error {
	return zerr.Tag(zerr.ErrLoad, load(m, exe, libs))
}

func load(m *vm.Machine, exe *binfmt.Binary, libs map[string]*binfmt.Binary) error {
	loaded := []*binfmt.Binary{}
	seen := map[string]bool{}

	var need func(b *binfmt.Binary) error
	need = func(b *binfmt.Binary) error {
		loaded = append(loaded, b)
		for _, name := range b.Libs {
			if seen[name] {
				continue
			}
			seen[name] = true
			lib, ok := libs[name]
			if !ok {
				return fmt.Errorf("loader: missing library %q", name)
			}
			if err := need(lib); err != nil {
				return err
			}
		}
		return nil
	}
	if err := need(exe); err != nil {
		return err
	}

	for _, b := range loaded {
		if err := mapBinary(m, b); err != nil {
			return err
		}
	}
	if err := resolve(m, loaded); err != nil {
		return err
	}
	m.SetPC(exe.Entry)
	return nil
}

func mapBinary(m *vm.Machine, b *binfmt.Binary) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("loader: %w", err)
	}
	for _, seg := range b.Segments {
		perm := vm.PermR
		switch seg.Kind {
		case binfmt.Text:
			perm |= vm.PermX
		case binfmt.Data:
			perm |= vm.PermW
		default:
			return fmt.Errorf("loader: unknown segment kind %d", seg.Kind)
		}
		if err := m.Map(seg.VAddr, len(seg.Data), perm); err != nil {
			return fmt.Errorf("loader: map segment at %#x: %w", seg.VAddr, err)
		}
		if err := m.WriteMem(seg.VAddr, seg.Data); err != nil {
			return fmt.Errorf("loader: populate segment at %#x: %w", seg.VAddr, err)
		}
	}
	return nil
}

func resolve(m *vm.Machine, loaded []*binfmt.Binary) error {
	exports := map[string]uint32{}
	for _, b := range loaded {
		for _, e := range b.Exports {
			if _, dup := exports[e.Name]; dup {
				return fmt.Errorf("loader: duplicate export %q", e.Name)
			}
			exports[e.Name] = e.Addr
		}
	}
	for _, b := range loaded {
		for _, im := range b.Imports {
			addr, ok := exports[im.Name]
			if !ok {
				return fmt.Errorf("loader: unresolved import %q", im.Name)
			}
			slot := []byte{byte(addr), byte(addr >> 8), byte(addr >> 16), byte(addr >> 24)}
			if err := m.WriteMem(im.GotAddr, slot); err != nil {
				return fmt.Errorf("loader: write GOT slot for %q: %w", im.Name, err)
			}
		}
	}
	return nil
}
