package fleet

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Circuit-breaker tuning. A worker is marked down after failThreshold
// consecutive failures (probe or forward); after cooldown the circuit
// goes half-open and admits a single trial request, whose outcome
// closes or re-opens it.
const (
	failThreshold = 3
	cooldown      = 2 * time.Second
	probeInterval = 500 * time.Millisecond
	probeTimeout  = 1 * time.Second
	circuitOpen   = "open"
	circuitHalf   = "half-open"
	circuitClosed = "closed"
)

// workerState is the gateway's view of one worker: its circuit state
// and the consecutive-failure count feeding it.
type workerState struct {
	addr     string
	fails    int       // consecutive failures
	openedAt time.Time // when the circuit last opened
	state    string    // circuitClosed | circuitOpen | circuitHalf
	trialing bool      // a half-open trial request is in flight
}

// health tracks every worker's circuit. All methods are safe for
// concurrent use. now is injectable for tests.
type health struct {
	mu      sync.Mutex
	workers map[string]*workerState
	now     func() time.Time
}

func newHealth(addrs []string) *health {
	h := &health{workers: make(map[string]*workerState, len(addrs)), now: time.Now}
	for _, a := range addrs {
		h.workers[a] = &workerState{addr: a, state: circuitClosed}
	}
	return h
}

// admit reports whether a request may be sent to addr right now. An
// open circuit past its cooldown flips to half-open and admits exactly
// one trial; further requests are refused until the trial reports.
func (h *health) admit(addr string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	w := h.workers[addr]
	if w == nil {
		return false
	}
	switch w.state {
	case circuitClosed:
		return true
	case circuitOpen:
		if h.now().Sub(w.openedAt) < cooldown {
			return false
		}
		w.state = circuitHalf
		w.trialing = true
		return true
	default: // half-open: one trial at a time
		if w.trialing {
			return false
		}
		w.trialing = true
		return true
	}
}

// report records the outcome of a request or probe against addr.
func (h *health) report(addr string, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w := h.workers[addr]
	if w == nil {
		return
	}
	w.trialing = false
	if ok {
		w.fails = 0
		w.state = circuitClosed
		return
	}
	w.fails++
	if w.state == circuitHalf || w.fails >= failThreshold {
		w.state = circuitOpen
		w.openedAt = h.now()
		w.fails = failThreshold // saturate so one success fully closes
	}
}

// up reports whether addr's circuit is closed.
func (h *health) up(addr string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	w := h.workers[addr]
	return w != nil && w.state == circuitClosed
}

// snapshot returns each worker's circuit state keyed by address.
func (h *health) snapshot() map[string]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]string, len(h.workers))
	for a, w := range h.workers {
		out[a] = w.state
	}
	return out
}

// probe performs one /healthz round against every worker, feeding the
// circuits. Probing a worker whose circuit is open is what eventually
// half-opens and heals it without riding on client traffic.
func (h *health) probe(ctx context.Context, client *http.Client, scheme string) {
	h.mu.Lock()
	addrs := make([]string, 0, len(h.workers))
	for a := range h.workers {
		addrs = append(addrs, a)
	}
	h.mu.Unlock()
	var wg sync.WaitGroup
	for _, addr := range addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, probeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, scheme+"://"+addr+"/healthz", nil)
			if err != nil {
				h.report(addr, false)
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				h.report(addr, false)
				return
			}
			resp.Body.Close()
			h.report(addr, resp.StatusCode == http.StatusOK)
		}(addr)
	}
	wg.Wait()
}

// probeLoop probes until ctx is done.
func (h *health) probeLoop(ctx context.Context, client *http.Client, scheme string) {
	t := time.NewTicker(probeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			h.probe(ctx, client, scheme)
		}
	}
}
