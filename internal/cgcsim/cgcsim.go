// Package cgcsim reproduces the paper's CGC evaluation environment: a
// corpus of challenge binaries with pollers, the three DARPA scoring
// metrics (file size on disk, execution as retired instructions, memory
// as MaxRSS), functionality checking by transcript comparison, and the
// histogram bins of Figures 4-6.
package cgcsim

import (
	"bytes"
	"fmt"
	"math/rand"

	"zipr/internal/binfmt"
	"zipr/internal/isa"
	"zipr/internal/loader"
	"zipr/internal/par"
	"zipr/internal/synth"
	"zipr/internal/vm"
)

// CB is one challenge binary plus its pollers.
type CB struct {
	Name    string
	Bin     *binfmt.Binary
	Pollers [][]byte
}

// PollersPerCB is how many generated inputs exercise each binary.
const PollersPerCB = 4

// Corpus builds the n-binary challenge corpus (use synth.CorpusSize for
// the paper's 62). Binaries and pollers are deterministic: every CB is
// derived solely from its index, so construction fans out across
// workers and fills the slice by index.
func Corpus(n int) ([]CB, error) {
	return CorpusArch(n, isa.DefaultArch())
}

// CorpusArch builds the corpus for the given instruction set. Profiles,
// seeds and pollers are identical across ISAs; only the generated
// machine code differs.
func CorpusArch(n int, arch isa.Arch) ([]CB, error) {
	cbs := make([]CB, n)
	workers := par.ScaledWorkers(n, 4)
	err := par.Each(workers, n, func(i int) error {
		cb, err := CBArch(i, arch)
		if err != nil {
			return err
		}
		cbs[i] = cb
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cbs, nil
}

// CBArch builds the single corpus entry with index i for the given
// instruction set — the unit CorpusArch fans out over. Suites that pin
// a sparse slice of the corpus (the per-ISA golden matrix) use it to
// get exactly the programs they need, with the same binaries and
// pollers a full CorpusArch run would produce at that index.
func CBArch(i int, arch isa.Arch) (CB, error) {
	seed, profile := synth.CBProfile(i)
	bin, err := synth.BuildArch(seed, profile, arch)
	if err != nil {
		return CB{}, fmt.Errorf("cgcsim: build cb%d: %w", i, err)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x9E3779B9))
	pollers := make([][]byte, PollersPerCB)
	for pi := range pollers {
		in := make([]byte, profile.InputLen)
		rng.Read(in)
		pollers[pi] = in
	}
	return CB{Name: profile.Name, Bin: bin, Pollers: pollers}, nil
}

// VeneerCB builds the handwritten veneer-stress challenge binary for
// arch, with deterministic pollers derived the same way as CorpusArch's.
// On a bounded-reach ISA its rewrite must emit range-extension islands
// (see synth.VeneerStressSource).
func VeneerCB(arch isa.Arch) (CB, error) {
	bin, err := synth.BuildVeneer(arch)
	if err != nil {
		return CB{}, fmt.Errorf("cgcsim: build veneer: %w", err)
	}
	rng := rand.New(rand.NewSource(synth.VeneerSeed ^ 0x9E3779B9))
	pollers := make([][]byte, PollersPerCB)
	for pi := range pollers {
		in := make([]byte, synth.VeneerInputLen)
		rng.Read(in)
		pollers[pi] = in
	}
	return CB{Name: synth.VeneerStressName, Bin: bin, Pollers: pollers}, nil
}

// Metrics are the three CGC scoring dimensions for one binary across its
// pollers.
type Metrics struct {
	FileSize    int    // serialized ZELF bytes
	Steps       uint64 // retired instructions, summed over pollers
	MaxRSSPages int    // peak distinct 4 KiB pages, max over pollers
}

// Transcript is the observable behavior of one poller run.
type Transcript struct {
	Output []byte
	Exit   int32
}

// Measure runs every poller against bin and returns metrics plus the
// transcripts (the functionality oracle).
func Measure(bin *binfmt.Binary, libs map[string]*binfmt.Binary, pollers [][]byte) (Metrics, []Transcript, error) {
	return MeasureArch(bin, libs, pollers, isa.DefaultArch())
}

// MeasureArch is Measure with an explicit instruction set for the VM.
func MeasureArch(bin *binfmt.Binary, libs map[string]*binfmt.Binary, pollers [][]byte, arch isa.Arch) (Metrics, []Transcript, error) {
	m := Metrics{FileSize: bin.FileSize()}
	transcripts := make([]Transcript, 0, len(pollers))
	for pi, input := range pollers {
		machine := vm.New(vm.WithStdin(bytes.NewReader(input)),
			vm.WithMaxSteps(50_000_000), vm.WithArch(arch))
		if err := loader.Load(machine, bin, libs); err != nil {
			return m, nil, fmt.Errorf("cgcsim: poller %d: %w", pi, err)
		}
		res, err := machine.Run()
		if err != nil {
			return m, nil, fmt.Errorf("cgcsim: poller %d: %w", pi, err)
		}
		m.Steps += res.Steps
		if res.PagesTouched > m.MaxRSSPages {
			m.MaxRSSPages = res.PagesTouched
		}
		transcripts = append(transcripts, Transcript{Output: res.Output, Exit: res.ExitCode})
	}
	return m, transcripts, nil
}

// Equivalent reports whether two transcript sets are byte-identical.
func Equivalent(a, b []Transcript) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Exit != b[i].Exit || !bytes.Equal(a[i].Output, b[i].Output) {
			return false
		}
	}
	return true
}

// Overheads are relative cost increases, in percent.
type Overheads struct {
	File, Exec, Mem float64
}

// Overhead computes other's cost relative to base.
func Overhead(base, other Metrics) Overheads {
	pct := func(b, o float64) float64 {
		if b == 0 {
			return 0
		}
		return (o - b) / b * 100
	}
	return Overheads{
		File: pct(float64(base.FileSize), float64(other.FileSize)),
		Exec: pct(float64(base.Steps), float64(other.Steps)),
		Mem:  pct(float64(base.MaxRSSPages), float64(other.MaxRSSPages)),
	}
}

// Bin is one histogram bucket of Figures 4-6.
type Bin struct {
	Label string
	Max   float64 // upper bound in percent (inclusive)
}

// Bins are the overhead buckets used in the figures. The CGC thresholds
// fall on the 5% (execution/memory) and 20% (file size) edges.
var Bins = []Bin{
	{Label: "<=0%", Max: 0},
	{Label: "0-5%", Max: 5},
	{Label: "5-10%", Max: 10},
	{Label: "10-20%", Max: 20},
	{Label: "20-50%", Max: 50},
	{Label: ">50%", Max: 1e18},
}

// Histogram counts overheads per bin.
type Histogram struct {
	Counts []int
}

// NewHistogram creates an empty histogram over Bins.
func NewHistogram() *Histogram { return &Histogram{Counts: make([]int, len(Bins))} }

// Add buckets one overhead percentage.
func (h *Histogram) Add(pct float64) {
	for i, b := range Bins {
		if pct <= b.Max {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Counts)-1]++
}

// RewriteFunc rewrites one binary (a closure over the zipr pipeline and
// a transform configuration).
type RewriteFunc func(*binfmt.Binary) (*binfmt.Binary, error)

// Row is the per-CB result of one configuration.
type Row struct {
	Name       string
	Overheads  Overheads
	Functional bool
}

// Evaluate rewrites every CB under rewrite and measures overheads
// against the unmodified binaries, using one worker per GOMAXPROCS.
// Equivalent to EvaluateParallel(cbs, rewrite, 0).
func Evaluate(cbs []CB, rewrite RewriteFunc) ([]Row, error) {
	return EvaluateParallel(cbs, rewrite, 0)
}

// EvaluateParallel is Evaluate with an explicit worker count (the
// cgc-eval -j flag); workers <= 0 uses GOMAXPROCS. Each CB's
// rewrite-and-measure cycle is independent, so the corpus fans out
// across a bounded pool; rows are written by corpus index, making the
// result order — and, because each cycle is deterministic, the result
// values — identical at any worker count. On failure the error for the
// lowest-index CB is returned, matching the serial loop's first error.
//
// The rewrite closure is called concurrently and must be safe for that:
// the zipr pipeline is, provided closures over a shared *obs.Trace are
// avoided (give each rewrite its own Trace and fold them into an
// obs.Agg, which locks).
func EvaluateParallel(cbs []CB, rewrite RewriteFunc, workers int) ([]Row, error) {
	rows := make([]Row, len(cbs))
	err := par.Each(par.Workers(workers, len(cbs)), len(cbs), func(i int) error {
		cb := &cbs[i]
		baseM, baseT, err := Measure(cb.Bin, nil, cb.Pollers)
		if err != nil {
			return fmt.Errorf("cgcsim: %s baseline: %w", cb.Name, err)
		}
		rcb, err := rewrite(cb.Bin.Clone())
		if err != nil {
			return fmt.Errorf("cgcsim: %s rewrite: %w", cb.Name, err)
		}
		newM, newT, err := Measure(rcb, nil, cb.Pollers)
		if err != nil {
			return fmt.Errorf("cgcsim: %s rewritten run: %w", cb.Name, err)
		}
		rows[i] = Row{
			Name:       cb.Name,
			Overheads:  Overhead(baseM, newM),
			Functional: Equivalent(baseT, newT),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Summary aggregates rows into the figures' data.
type Summary struct {
	FileHist, ExecHist, MemHist *Histogram
	AvgFile, AvgExec, AvgMem    float64
	Functional, Total           int
}

// Summarize produces histogram and average views over rows (Figures 4-7).
func Summarize(rows []Row) Summary {
	s := Summary{
		FileHist: NewHistogram(),
		ExecHist: NewHistogram(),
		MemHist:  NewHistogram(),
		Total:    len(rows),
	}
	for _, r := range rows {
		s.FileHist.Add(r.Overheads.File)
		s.ExecHist.Add(r.Overheads.Exec)
		s.MemHist.Add(r.Overheads.Mem)
		s.AvgFile += r.Overheads.File
		s.AvgExec += r.Overheads.Exec
		s.AvgMem += r.Overheads.Mem
		if r.Functional {
			s.Functional++
		}
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		s.AvgFile /= n
		s.AvgExec /= n
		s.AvgMem /= n
	}
	return s
}
