package zipr

// Determinism tests for the parallel pipeline: every fan-out level —
// concurrent dual disassembly, sharded pin scans, the corpus worker
// pool — must produce output byte-identical to the serial path, for
// every layout strategy (including the seeded diversity layout, whose
// placement is random but derived only from Config.Seed).

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"zipr/internal/binfmt"
	"zipr/internal/cgcsim"
	"zipr/internal/disasm"
	"zipr/internal/isa"
	"zipr/internal/synth"
)

// dumpAgg flattens an Aggregated view into comparable values.
func dumpAgg(agg disasm.Aggregated) (insts, ambig []uint64) {
	pack := func(a uint32, in isa.Inst) uint64 {
		return uint64(a)<<32 | uint64(in.Op)<<24 | uint64(in.Rd)<<16 | uint64(in.Rs)<<8 | uint64(in.Cc)
	}
	agg.Insts.All(func(a uint32, in isa.Inst) bool {
		insts = append(insts, pack(a, in))
		return true
	})
	agg.AmbigInsts.All(func(a uint32, in isa.Inst) bool {
		ambig = append(ambig, pack(a, in))
		return true
	})
	return insts, ambig
}

// TestDisassembleSerialMatchesParallel checks that the concurrent dual
// disassembly produces exactly the serial back-to-back result on a
// spread of binaries (plain, ambiguous-heavy, pathological).
func TestDisassembleSerialMatchesParallel(t *testing.T) {
	for _, idx := range []int{0, 5, 10, synth.PathologicalCB} {
		seed, profile := synth.CBProfile(idx)
		bin, err := synth.Build(seed, profile)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := disasm.DisassembleOpts(bin, disasm.Options{Serial: true})
		if err != nil {
			t.Fatal(err)
		}
		par, err := disasm.DisassembleOpts(bin, disasm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sI, sA := dumpAgg(serial)
		pI, pA := dumpAgg(par)
		if !reflect.DeepEqual(sI, pI) {
			t.Fatalf("cb%d: instruction sets differ (serial %d, parallel %d)", idx, len(sI), len(pI))
		}
		if !reflect.DeepEqual(sA, pA) {
			t.Fatalf("cb%d: ambiguous sets differ", idx)
		}
		if !reflect.DeepEqual(serial.Fixed, par.Fixed) {
			t.Fatalf("cb%d: fixed ranges differ: %v vs %v", idx, serial.Fixed, par.Fixed)
		}
		if !bytes.Equal(classBytes(serial.Classes), classBytes(par.Classes)) {
			t.Fatalf("cb%d: byte classifications differ", idx)
		}
		if !reflect.DeepEqual(serial.Warnings, par.Warnings) {
			t.Fatalf("cb%d: warnings differ:\n%v\nvs\n%v", idx, serial.Warnings, par.Warnings)
		}
	}
}

func classBytes(cs []disasm.Class) []byte {
	out := make([]byte, len(cs))
	for i, c := range cs {
		out[i] = byte(c)
	}
	return out
}

// evalCapture runs one corpus evaluation at the given worker count,
// capturing every rewritten image and its stats keyed by the serialized
// input (unique per CB, stable across runs).
func evalCapture(t *testing.T, cbs []cgcsim.CB, layout LayoutKind, workers int) ([]cgcsim.Row, map[string][]byte, map[string]Stats) {
	t.Helper()
	outs := make(map[string][]byte)
	stats := make(map[string]Stats)
	var mu sync.Mutex
	fn := func(b *binfmt.Binary) (*binfmt.Binary, error) {
		key, err := b.Marshal()
		if err != nil {
			return nil, err
		}
		cfg := Config{Transforms: []Transform{Null()}, Layout: layout, Seed: 42}
		if layout == LayoutProfileGuided {
			// Deterministic profile stand-in: treat the entry function as hot.
			cfg.HotFuncs = []uint32{b.Entry}
		}
		out, rep, err := RewriteBinary(b, cfg)
		if err != nil {
			return nil, err
		}
		img, err := out.Marshal()
		if err != nil {
			return nil, err
		}
		mu.Lock()
		outs[string(key)] = img
		stats[string(key)] = rep.Stats
		mu.Unlock()
		return out, nil
	}
	rows, err := cgcsim.EvaluateParallel(cbs, fn, workers)
	if err != nil {
		t.Fatalf("%s j=%d: %v", layout, workers, err)
	}
	return rows, outs, stats
}

// TestEvalWorkersDeterministic checks that -j 1 and -j 8 corpus
// evaluation produce byte-identical rewritten images, identical
// Report.Stats and identical result rows under all three layouts.
func TestEvalWorkersDeterministic(t *testing.T) {
	cbs, err := cgcsim.Corpus(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []LayoutKind{LayoutOptimized, LayoutDiversity, LayoutProfileGuided} {
		rows1, outs1, stats1 := evalCapture(t, cbs, layout, 1)
		rows8, outs8, stats8 := evalCapture(t, cbs, layout, 8)
		if !reflect.DeepEqual(rows1, rows8) {
			t.Fatalf("%s: result rows differ between j=1 and j=8:\n%v\nvs\n%v", layout, rows1, rows8)
		}
		if len(outs1) != len(cbs) || len(outs8) != len(cbs) {
			t.Fatalf("%s: captured %d/%d rewrites, want %d", layout, len(outs1), len(outs8), len(cbs))
		}
		for key, img1 := range outs1 {
			img8, ok := outs8[key]
			if !ok {
				t.Fatalf("%s: j=8 run missing a binary rewritten at j=1", layout)
			}
			if !bytes.Equal(img1, img8) {
				t.Fatalf("%s: rewritten image differs between j=1 and j=8 (%d vs %d bytes)", layout, len(img1), len(img8))
			}
			if stats1[key] != stats8[key] {
				t.Fatalf("%s: Report.Stats differ between j=1 and j=8:\n%+v\nvs\n%+v", layout, stats1[key], stats8[key])
			}
		}
	}
}
