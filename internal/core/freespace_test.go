package core

import (
	"testing"
	"testing/quick"

	"zipr/internal/ir"
)

func TestFreeSpaceInitWithHoles(t *testing.T) {
	fs := NewFreeSpace(ir.Range{Start: 100, End: 200}, []ir.Range{
		{Start: 120, End: 130},
		{Start: 150, End: 160},
	})
	blocks := fs.Blocks()
	want := []ir.Range{{Start: 100, End: 120}, {Start: 130, End: 150}, {Start: 160, End: 200}}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %+v", blocks)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("blocks = %+v, want %+v", blocks, want)
		}
	}
	if fs.TotalFree() != 20+20+40 {
		t.Fatalf("TotalFree = %d", fs.TotalFree())
	}
}

func TestFreeSpaceCarveAndRelease(t *testing.T) {
	fs := NewFreeSpace(ir.Range{Start: 0, End: 100}, nil)
	if err := fs.Carve(ir.Range{Start: 10, End: 20}); err != nil {
		t.Fatal(err)
	}
	if fs.Contains(ir.Range{Start: 10, End: 11}) {
		t.Fatal("carved range still free")
	}
	if !fs.Contains(ir.Range{Start: 0, End: 10}) || !fs.Contains(ir.Range{Start: 20, End: 100}) {
		t.Fatal("surrounding space lost")
	}
	// Carving across the hole must fail.
	if err := fs.Carve(ir.Range{Start: 5, End: 15}); err == nil {
		t.Fatal("carve across hole should fail")
	}
	if err := fs.Carve(ir.Range{Start: 15, End: 15}); err == nil {
		t.Fatal("empty carve should fail")
	}
	fs.Release(ir.Range{Start: 10, End: 20})
	if !fs.Contains(ir.Range{Start: 0, End: 100}) {
		t.Fatal("release did not merge back")
	}
	if len(fs.Blocks()) != 1 {
		t.Fatalf("blocks after merge = %+v", fs.Blocks())
	}
}

func TestFreeSpaceLargestAndFindWithin(t *testing.T) {
	fs := NewFreeSpace(ir.Range{Start: 0, End: 100}, []ir.Range{{Start: 30, End: 90}})
	// Blocks: [0,30) and [90,100).
	largest, ok := fs.Largest()
	if !ok || largest.Len() != 30 {
		t.Fatalf("largest = %+v", largest)
	}
	r, ok := fs.FindWithin(ir.Range{Start: 25, End: 95}, 5)
	if !ok || r.Start != 25 {
		t.Fatalf("FindWithin = %+v, %v", r, ok)
	}
	r, ok = fs.FindWithin(ir.Range{Start: 28, End: 95}, 5)
	if !ok || r.Start != 90 {
		t.Fatalf("FindWithin skipping small tail = %+v, %v", r, ok)
	}
	if _, ok := fs.FindWithin(ir.Range{Start: 31, End: 89}, 1); ok {
		t.Fatal("FindWithin inside hole should fail")
	}
	if _, ok := NewFreeSpace(ir.Range{Start: 0, End: 0}, nil).Largest(); ok {
		t.Fatal("empty space has no largest block")
	}
}

func TestQuickFreeSpaceCarveReleaseRoundTrip(t *testing.T) {
	// Property: any sequence of valid carves followed by releases in any
	// order restores full free space.
	f := func(sizes []uint8) bool {
		whole := ir.Range{Start: 0, End: 4096}
		fs := NewFreeSpace(whole, nil)
		var carved []ir.Range
		cursor := uint32(0)
		for _, s := range sizes {
			size := uint32(s%64) + 1
			if cursor+size > whole.End {
				break
			}
			r := ir.Range{Start: cursor, End: cursor + size}
			if err := fs.Carve(r); err != nil {
				return false
			}
			carved = append(carved, r)
			cursor += size + uint32(s%3) // leave occasional gaps
		}
		// Release in reverse order.
		for i := len(carved) - 1; i >= 0; i-- {
			fs.Release(carved[i])
		}
		return fs.TotalFree() == int(whole.Len()) && len(fs.Blocks()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
