package irdb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	err := db.CreateTable(Schema{
		Name: "insn",
		Cols: []Col{
			{Name: "addr", Type: Int},
			{Name: "mnem", Type: Text},
			{Name: "bytes", Type: Bytes},
			{Name: "pinned", Type: Bool},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestInsertGetUpdateDelete(t *testing.T) {
	db := newTestDB(t)
	id, err := db.Insert("insn", Row{"addr": 0x1000, "mnem": "nop", "pinned": true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.Get("insn", id)
	if err != nil {
		t.Fatal(err)
	}
	if r["addr"].(int64) != 0x1000 || r["mnem"].(string) != "nop" || r["pinned"].(bool) != true {
		t.Fatalf("row = %+v", r)
	}
	if b, ok := r["bytes"].([]byte); !ok || b != nil {
		t.Fatalf("missing column default wrong: %+v", r["bytes"])
	}
	if err := db.Update("insn", id, Row{"mnem": "ret"}); err != nil {
		t.Fatal(err)
	}
	r, _ = db.Get("insn", id)
	if r["mnem"].(string) != "ret" {
		t.Fatalf("update failed: %+v", r)
	}
	if err := db.Delete("insn", id); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("insn", id); !errors.Is(err, ErrNoRow) {
		t.Fatalf("get after delete: %v", err)
	}
}

func TestErrorsAPI(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Insert("nope", Row{}); !errors.Is(err, ErrNoTable) {
		t.Fatalf("insert into missing table: %v", err)
	}
	if _, err := db.Insert("insn", Row{"bogus": 1}); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("insert bad column: %v", err)
	}
	if _, err := db.Insert("insn", Row{"addr": "str"}); !errors.Is(err, ErrBadType) {
		t.Fatalf("insert bad type: %v", err)
	}
	if _, err := db.Insert("insn", Row{"id": 5}); err == nil {
		t.Fatal("explicit id should fail")
	}
	if err := db.CreateTable(Schema{Name: "insn"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate table: %v", err)
	}
	if err := db.CreateTable(Schema{Name: "t2", Cols: []Col{{Name: "id", Type: Int}}}); err == nil {
		t.Fatal("redeclared id should fail")
	}
	if err := db.CreateTable(Schema{Name: "t3", Cols: []Col{{Name: "a", Type: Int}, {Name: "a", Type: Int}}}); err == nil {
		t.Fatal("duplicate column should fail")
	}
	if err := db.Update("insn", 99, Row{"mnem": "x"}); !errors.Is(err, ErrNoRow) {
		t.Fatalf("update missing row: %v", err)
	}
	if err := db.Delete("insn", 99); !errors.Is(err, ErrNoRow) {
		t.Fatalf("delete missing row: %v", err)
	}
}

func TestSelectAndLookupWithIndex(t *testing.T) {
	db := newTestDB(t)
	for i := 0; i < 100; i++ {
		_, err := db.Insert("insn", Row{"addr": 0x1000 + i, "mnem": fmt.Sprintf("op%d", i%10)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateIndex("insn", "mnem"); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Lookup("insn", "mnem", "op3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("lookup returned %d rows, want 10", len(rows))
	}
	// Index must track updates and deletes.
	id := rows[0]["id"].(int64)
	if err := db.Update("insn", id, Row{"mnem": "renamed"}); err != nil {
		t.Fatal(err)
	}
	rows, _ = db.Lookup("insn", "mnem", "op3")
	if len(rows) != 9 {
		t.Fatalf("after update lookup = %d rows, want 9", len(rows))
	}
	rows, _ = db.Lookup("insn", "mnem", "renamed")
	if len(rows) != 1 {
		t.Fatalf("renamed lookup = %d rows, want 1", len(rows))
	}
	if err := db.Delete("insn", id); err != nil {
		t.Fatal(err)
	}
	rows, _ = db.Lookup("insn", "mnem", "renamed")
	if len(rows) != 0 {
		t.Fatalf("after delete lookup = %d rows, want 0", len(rows))
	}
	// Unindexed lookup falls back to a scan.
	rows, err = db.Lookup("insn", "addr", 0x1001)
	if err != nil || len(rows) != 1 {
		t.Fatalf("unindexed lookup = %d rows (%v), want 1", len(rows), err)
	}
	n, err := db.Count("insn")
	if err != nil || n != 99 {
		t.Fatalf("count = %d, want 99", n)
	}
}

func TestSelectReturnsCopies(t *testing.T) {
	db := newTestDB(t)
	id, _ := db.Insert("insn", Row{"mnem": "nop"})
	rows, _ := db.Select("insn", nil)
	rows[0]["mnem"] = "corrupted"
	r, _ := db.Get("insn", id)
	if r["mnem"].(string) != "nop" {
		t.Fatal("Select leaked internal row storage")
	}
}

func TestSQLEndToEnd(t *testing.T) {
	db := New()
	mustExec := func(q string) Result {
		t.Helper()
		res, err := db.Exec(q)
		if err != nil {
			t.Fatalf("Exec(%q): %v", q, err)
		}
		return res
	}
	mustExec("CREATE TABLE funcs (name TEXT, entry INT, leaf BOOL)")
	mustExec("INSERT INTO funcs (name, entry, leaf) VALUES ('main', 0x1000, FALSE)")
	mustExec("INSERT INTO funcs (name, entry, leaf) VALUES ('helper', 4112, TRUE)")
	mustExec("INSERT INTO funcs (name, entry, leaf) VALUES ('exit', 4200, TRUE)")

	res := mustExec("SELECT * FROM funcs WHERE leaf = TRUE")
	if len(res.Rows) != 2 {
		t.Fatalf("leaf query = %d rows, want 2", len(res.Rows))
	}
	res = mustExec("SELECT name FROM funcs WHERE entry >= 4112 AND entry < 4200")
	if len(res.Rows) != 1 || res.Rows[0]["name"].(string) != "helper" {
		t.Fatalf("range query rows = %+v", res.Rows)
	}
	if _, has := res.Rows[0]["entry"]; has {
		t.Fatal("projection leaked unselected column")
	}
	res = mustExec("UPDATE funcs SET leaf = FALSE WHERE name = 'helper'")
	if res.Affected != 1 {
		t.Fatalf("update affected = %d", res.Affected)
	}
	res = mustExec("SELECT * FROM funcs WHERE leaf = TRUE")
	if len(res.Rows) != 1 {
		t.Fatalf("after update leaf rows = %d, want 1", len(res.Rows))
	}
	res = mustExec("DELETE FROM funcs WHERE entry > 4100")
	if res.Affected != 2 {
		t.Fatalf("delete affected = %d, want 2", res.Affected)
	}
	res = mustExec("SELECT * FROM funcs")
	if len(res.Rows) != 1 || res.Rows[0]["name"].(string) != "main" {
		t.Fatalf("final rows = %+v", res.Rows)
	}
}

func TestSQLStrings(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (s TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (s) VALUES ('he llo; world')"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT * FROM t WHERE s = 'he llo; world'")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("string match failed: %v, %d rows", err, len(res.Rows))
	}
	res, err = db.Exec("SELECT * FROM t WHERE s != 'x'")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("!= failed: %v", err)
	}
}

func TestSQLErrors(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"",
		"DROP TABLE t",
		"CREATE TABLE",
		"CREATE TABLE x (a FLOAT)",
		"SELECT FROM t",
		"SELECT * FROM missing",
		"SELECT nosuch FROM t",
		"INSERT INTO t (a) VALUES ('notint')",
		"INSERT INTO t (a) VALUES (1) garbage",
		"UPDATE t SET",
		"SELECT * FROM t WHERE a ~ 3",
		"SELECT * FROM t WHERE 'lit' = a",
		"INSERT INTO t (a) VALUES ('unterminated",
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", q)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := newTestDB(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id, err := db.Insert("insn", Row{"addr": g*1000 + i})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := db.Get("insn", id); err != nil {
					t.Error(err)
					return
				}
				if _, err := db.Select("insn", func(r Row) bool { return r["addr"].(int64)%7 == 0 }); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	n, _ := db.Count("insn")
	if n != 800 {
		t.Fatalf("count = %d, want 800", n)
	}
}

func TestQuickInsertLookupConsistency(t *testing.T) {
	// Property: after inserting N rows with arbitrary int keys, Lookup on
	// an indexed column finds exactly the rows with that key.
	f := func(keys []int16) bool {
		db := New()
		if err := db.CreateTable(Schema{Name: "t", Cols: []Col{{Name: "k", Type: Int}}}); err != nil {
			return false
		}
		if err := db.CreateIndex("t", "k"); err != nil {
			return false
		}
		want := map[int64]int{}
		for _, k := range keys {
			if _, err := db.Insert("t", Row{"k": int64(k)}); err != nil {
				return false
			}
			want[int64(k)]++
		}
		for k, n := range want {
			rows, err := db.Lookup("t", "k", k)
			if err != nil || len(rows) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTablesSorted(t *testing.T) {
	db := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := db.CreateTable(Schema{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	got := db.Tables()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tables() = %v, want %v", got, want)
		}
	}
}
