package zipr

import (
	"bytes"
	"testing"

	"zipr/internal/binfmt"
	"zipr/internal/cgcsim"
	"zipr/internal/core"
	"zipr/internal/ir"
	"zipr/internal/layout"
)

// The indexed allocator must be a pure complexity change: every layout
// strategy has to produce bit-identical binaries when driven through
// the O(log n) queries instead of the legacy full-snapshot linear
// scans. These tests rewrite a corpus twice — once with the production
// placers, once with the legacy slice-scanning placers preserved in
// layout/legacy.go — and compare the serialized images byte for byte.

// imageWith rewrites bin with an optional placer hook and returns the
// serialized output image.
func imageWith(t *testing.T, bin *binfmt.Binary, cfg Config, hook func(*ir.Program) core.Placer) []byte {
	t.Helper()
	out, _, err := rewriteBinaryPlacer(bin.Clone(), cfg, hook)
	if err != nil {
		t.Fatal(err)
	}
	img, err := out.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func identityCorpus(t *testing.T) []cgcsim.CB {
	t.Helper()
	cbs, err := cgcsim.Corpus(6)
	if err != nil {
		t.Fatal(err)
	}
	return cbs
}

func TestOptimizedByteIdentityWithLegacyPlacer(t *testing.T) {
	for _, cb := range identityCorpus(t) {
		for _, transforms := range [][]Transform{
			{Null()},
			{CFI()}, // synthesized checks churn free space much harder
		} {
			cfg := Config{Transforms: transforms}
			want := imageWith(t, cb.Bin, cfg, func(*ir.Program) core.Placer {
				return layout.LegacyOptimized{}
			})
			got := imageWith(t, cb.Bin, cfg, nil)
			if !bytes.Equal(want, got) {
				t.Fatalf("%s: optimized output diverged from legacy placer", cb.Name)
			}
		}
	}
}

func TestProfileGuidedByteIdentityWithLegacyPlacer(t *testing.T) {
	for _, cb := range identityCorpus(t) {
		hot := []uint32{cb.Bin.Entry}
		cfg := Config{Transforms: []Transform{Null()}, Layout: LayoutProfileGuided, HotFuncs: hot}
		want := imageWith(t, cb.Bin, cfg, func(prog *ir.Program) core.Placer {
			return &layout.LegacyProfileGuided{Hot: hotRanges(prog, hot)}
		})
		got := imageWith(t, cb.Bin, cfg, nil)
		if !bytes.Equal(want, got) {
			t.Fatalf("%s: profile-guided output diverged from legacy placer", cb.Name)
		}
	}
}

func TestProfileGuidedByteIdentityWithRealProfile(t *testing.T) {
	// Same comparison with a profiler-derived hot set instead of the
	// entry-function stand-in.
	orig, profile := pgoWorkload(t)
	training := bytes.Repeat([]byte{0x21}, profile.InputLen)
	hot := collectProfile(t, orig, training)
	cfg := Config{Layout: LayoutProfileGuided, HotFuncs: hot}
	want := imageWith(t, orig, cfg, func(prog *ir.Program) core.Placer {
		return &layout.LegacyProfileGuided{Hot: hotRanges(prog, hot)}
	})
	got := imageWith(t, orig, cfg, nil)
	if !bytes.Equal(want, got) {
		t.Fatal("profile-guided output diverged from legacy placer")
	}
}

func TestDiversityByteIdentityWithLegacyPlacer(t *testing.T) {
	// Diversity draws (block, offset) pairs from a seeded rng: identical
	// placements require the query path to surface fitting blocks in the
	// exact order the legacy scan did, so this doubles as a determinism
	// test per seed.
	for _, cb := range identityCorpus(t)[:3] {
		for _, seed := range []int64{1, 42, 0xC0FFEE} {
			cfg := Config{Transforms: []Transform{Null()}, Layout: LayoutDiversity, Seed: seed}
			want := imageWith(t, cb.Bin, cfg, func(*ir.Program) core.Placer {
				return layout.NewLegacyDiversity(seed)
			})
			got := imageWith(t, cb.Bin, cfg, nil)
			if !bytes.Equal(want, got) {
				t.Fatalf("%s seed %d: diversity output diverged from legacy placer", cb.Name, seed)
			}
			again := imageWith(t, cb.Bin, cfg, nil)
			if !bytes.Equal(got, again) {
				t.Fatalf("%s seed %d: diversity output not deterministic", cb.Name, seed)
			}
		}
	}
}
