package ir

import (
	"fmt"

	"zipr/internal/irdb"
)

// IRDB persistence. The pipeline stores the IR into the relational IRDB
// after construction and again after transformation, in the mediation
// role the paper assigns to its SQL-based IRDB; command-line tools can
// then inspect the program with SQL queries.

// DB table names used by SaveToDB.
const (
	TableInstructions = "instructions"
	TableFunctions    = "functions"
	TableFixedRanges  = "fixed_ranges"
	TableWarnings     = "warnings"
)

// SaveToDB writes the program's IR into db, creating the schema. The
// instruction table carries the logical links (fallthrough/target ids)
// exactly as the reassembler consumes them.
func SaveToDB(db *irdb.DB, p *Program) error {
	schemas := []irdb.Schema{
		{Name: TableInstructions, Cols: []irdb.Col{
			{Name: "iid", Type: irdb.Int}, // IR instruction id
			{Name: "mnem", Type: irdb.Text},
			{Name: "orig_addr", Type: irdb.Int},
			{Name: "pinned", Type: irdb.Bool},
			{Name: "fallthrough", Type: irdb.Int}, // IR id or 0
			{Name: "target", Type: irdb.Int},      // IR id or 0
			{Name: "abs_target", Type: irdb.Int},
		}},
		{Name: TableFunctions, Cols: []irdb.Col{
			{Name: "name", Type: irdb.Text},
			{Name: "entry_iid", Type: irdb.Int},
			{Name: "size", Type: irdb.Int},
		}},
		{Name: TableFixedRanges, Cols: []irdb.Col{
			{Name: "start", Type: irdb.Int},
			{Name: "length", Type: irdb.Int}, // "end" is an SQL keyword in real systems
		}},
		{Name: TableWarnings, Cols: []irdb.Col{
			{Name: "message", Type: irdb.Text},
		}},
	}
	for _, s := range schemas {
		if err := db.CreateTable(s); err != nil {
			return fmt.Errorf("save ir: %w", err)
		}
	}
	if err := db.CreateIndex(TableInstructions, "orig_addr"); err != nil {
		return fmt.Errorf("save ir: %w", err)
	}
	idOf := func(i *Instruction) int64 {
		if i == nil {
			return 0
		}
		return i.ID
	}
	for _, i := range p.Insts {
		_, err := db.Insert(TableInstructions, irdb.Row{
			"iid":         i.ID,
			"mnem":        i.Inst.String(),
			"orig_addr":   int64(i.OrigAddr),
			"pinned":      i.Pinned,
			"fallthrough": idOf(i.Fallthrough),
			"target":      idOf(i.Target),
			"abs_target":  int64(i.AbsTarget),
		})
		if err != nil {
			return fmt.Errorf("save ir: %w", err)
		}
	}
	for _, f := range p.Functions {
		_, err := db.Insert(TableFunctions, irdb.Row{
			"name":      f.Name,
			"entry_iid": idOf(f.Entry),
			"size":      int64(len(f.Insts)),
		})
		if err != nil {
			return fmt.Errorf("save ir: %w", err)
		}
	}
	for _, r := range p.Fixed {
		_, err := db.Insert(TableFixedRanges, irdb.Row{
			"start":  int64(r.Start),
			"length": int64(r.Len()),
		})
		if err != nil {
			return fmt.Errorf("save ir: %w", err)
		}
	}
	for _, w := range p.Warnings {
		if _, err := db.Insert(TableWarnings, irdb.Row{"message": w}); err != nil {
			return fmt.Errorf("save ir: %w", err)
		}
	}
	return nil
}
