// Package infer is the third disassembler: a Datalog-style inference
// engine over facts extracted from the binary, modeled on Datalog
// Disassembly (ddisasm). Where the linear sweep answers "does it
// decode" and the recursive traversal answers "is it provably
// reached", inference answers the question the two-way aggregation
// cannot: of the bytes that decode but are not provably reached, which
// are *actually* data?
//
// The pipeline is classic bottom-up Datalog, specialized and
// hand-compiled:
//
//  1. Fact extraction walks the binary once and materializes the
//     ground relations: candidate instruction starts (a decode attempt
//     at every text offset), fallthrough/branch/call edges between
//     candidates, data-access targets (loadpc reads), in-text pointer
//     words, printable-string runs, and overlap conflicts against the
//     provably-reached instruction set.
//  2. A semi-naive fixed-point engine evaluates the weighted rule set
//     (see rules.go): each round propagates only the delta — beliefs
//     raised in the previous round — along edges, so work is
//     proportional to derived facts, not rounds times relations.
//     Beliefs combine by max and are capped at WeightStrong, so the
//     ascent is monotone on a finite lattice and terminates on any
//     input, including cyclic edge graphs.
//  3. The output is a per-address belief map: code weight and data
//     weight in [0,100], each tagged with the rule that set it
//     (provenance), plus run statistics for the infer.* metrics.
//
// The consumer (internal/disasm's weighted arbitration) only ever uses
// a confident *data* verdict to demote an ambiguous candidate — it
// never promotes bytes to relocatable code — so an inference mistake
// in the code direction costs nothing, and a mistake in the data
// direction is bounded by the verdict thresholds and vetoable per-site
// through fault injection.
package infer

import (
	"encoding/binary"

	"zipr/internal/binfmt"
	"zipr/internal/isa"
)

// RuleID names the inference rule that established a belief, for
// provenance in diagnostics and tests.
type RuleID uint8

// Rule identifiers. Code rules raise code beliefs; data rules raise
// data beliefs (per byte or per candidate start).
const (
	RuleNone        RuleID = iota
	RuleStrongReach        // code: reached from entry/export/data-pointer seeds
	RulePtrTarget          // code: an in-text pointer word names this address
	RuleCodeFlow           // code: flow edge from a believed-code candidate
	RuleDataAccess         // data: a provably-reached loadpc reads these bytes
	RuleTableSlot          // data: aligned in-text word holding a code pointer
	RuleStringRun          // data: printable/NUL string run
	RuleDeadEnd            // data: every decode chain hits undecodable bytes
	RuleOverlap            // data: decode straddles a provably-reached instruction
	RuleDataGap            // data: short gap bridging two data-evidenced bytes
)

var ruleNames = [...]string{
	RuleNone:        "none",
	RuleStrongReach: "strong-reach",
	RulePtrTarget:   "ptr-target",
	RuleCodeFlow:    "code-flow",
	RuleDataAccess:  "data-access",
	RuleTableSlot:   "table-slot",
	RuleStringRun:   "string-run",
	RuleDeadEnd:     "dead-end",
	RuleOverlap:     "overlap",
	RuleDataGap:     "data-gap",
}

// String returns the rule's stable kebab-case name.
func (r RuleID) String() string {
	if int(r) < len(ruleNames) {
		return ruleNames[r]
	}
	return "rule(?)"
}

// Rule weights and verdict thresholds. Weights live on a 0..100 scale;
// beliefs combine by max. The thresholds encode the safety policy: a
// candidate is only demoted to data when its data belief clears
// DataThreshold AND its code belief stays below CodeKeep — any code
// evidence at all (reachability from a pointer word, a coherent flow
// chain) blocks demotion, and everything below both thresholds falls
// back to the conservative pin treatment.
const (
	WeightStrong     = 100 // axiom: provably reached
	WeightDataAccess = 90  // loadpc from strong code reads these bytes
	WeightOverlap    = 85  // decode straddles strong code
	WeightDeadEnd    = 80  // all decode chains reach undecodable bytes
	WeightPtrTarget  = 70  // pointer word names this address
	WeightTableSlot  = 70  // the pointer word's own bytes
	WeightString     = 60  // printable run
	WeightDataGap    = 60  // bytes bridging two data-evidenced neighbors
	maxDataGap       = 8   // widest gap the coalescing rule bridges
	hopDecay         = 5   // code belief lost per flow edge
	codeFloor        = 55  // flow propagation never decays below this

	// CodeKeep is the code-belief level at or above which a candidate is
	// never demoted.
	CodeKeep = 50
	// DataThreshold is the data-belief level required to demote.
	DataThreshold = 60
)

// Verdict is the arbitration-facing summary of a candidate's beliefs.
type Verdict uint8

// Verdicts.
const (
	// VerdictUnknown: neither belief clears its threshold — the caller
	// must fall back to the conservative (pin) treatment.
	VerdictUnknown Verdict = iota
	// VerdictCode: code belief at or above CodeKeep.
	VerdictCode
	// VerdictData: data belief at or above DataThreshold with code
	// belief below CodeKeep — safe to treat as data.
	VerdictData
)

// Stats summarizes one inference run for the infer.* metrics.
type Stats struct {
	Candidates   int // offsets that decode
	StrongStarts int // provably-reached instruction starts
	FactBytes    int // bytes covered by ground data facts
	Nonviable    int // candidates refuted by the dead-end rule
	Raised       int // belief raises during fixed-point evaluation
	Iterations   int // worklist pops across both fixed points
}

// Result holds per-address beliefs with rule provenance.
type Result struct {
	base uint32
	text []byte
	arch isa.Arch

	cand      []isa.Inst // candidate decode at each offset (OpInvalid: none)
	strongCov []bool     // byte is covered by a provably-reached instruction
	strong    []bool     // offset is a provably-reached instruction start
	viable    []bool     // candidate's decode chains avoid dead ends

	codeW    []uint8 // per-start code belief
	codeRule []RuleID
	dataW    []uint8 // per-byte data belief
	dataRule []RuleID
	junkW    []uint8 // per-start data belief (the decode itself is junk)
	junkRule []RuleID

	// ptrTargets are in-text offsets named by stored pointer words
	// (table slots); propagateCode seeds them at WeightPtrTarget.
	ptrTargets []int32

	stats Stats
}

// Stats returns the run's fact and fixed-point counters.
func (r *Result) Stats() Stats { return r.stats }

// CodeBelief returns the code belief and provenance for a candidate
// starting at addr (0, RuleNone outside the text segment).
func (r *Result) CodeBelief(addr uint32) (uint8, RuleID) {
	off := addr - r.base
	if off >= uint32(len(r.codeW)) {
		return 0, RuleNone
	}
	return r.codeW[off], r.codeRule[off]
}

// ByteBelief returns the per-byte data belief and provenance for the
// single byte at addr — the ground-fact view, without the
// candidate-level junk-decode component DataBelief folds in. Rule
// tests and diagnostics use it to check which fact covered a byte.
func (r *Result) ByteBelief(addr uint32) (uint8, RuleID) {
	off := addr - r.base
	if off >= uint32(len(r.dataW)) {
		return 0, RuleNone
	}
	return r.dataW[off], r.dataRule[off]
}

// DataBelief returns the data belief and provenance for a candidate
// instruction spanning [addr, addr+length). The per-byte component is
// the *minimum* over the span — every byte must carry data evidence —
// maxed with the candidate-level junk-decode belief.
func (r *Result) DataBelief(addr uint32, length int) (uint8, RuleID) {
	off := int(addr - r.base)
	if off < 0 || off >= len(r.dataW) || length <= 0 {
		return 0, RuleNone
	}
	w, rule := r.junkW[off], r.junkRule[off]
	end := off + length
	if end > len(r.dataW) {
		end = len(r.dataW)
	}
	minW, minRule := uint8(255), RuleNone
	for i := off; i < end; i++ {
		if r.dataW[i] < minW {
			minW, minRule = r.dataW[i], r.dataRule[i]
		}
	}
	if minW != 255 && minW > w {
		w, rule = minW, minRule
	}
	return w, rule
}

// Verdict arbitrates the beliefs for a candidate spanning
// [addr, addr+length) against the demotion thresholds.
func (r *Result) Verdict(addr uint32, length int) (Verdict, RuleID) {
	if cw, crule := r.CodeBelief(addr); cw >= CodeKeep {
		return VerdictCode, crule
	}
	if dw, drule := r.DataBelief(addr, length); dw >= DataThreshold {
		return VerdictData, drule
	}
	return VerdictUnknown, RuleNone
}

// Analyze runs fact extraction and the weighted fixed point over bin's
// text segment under the default ISA. It is a pure function of the
// binary: no shared state, safe to run concurrently with the other two
// disassemblers.
func Analyze(bin *binfmt.Binary) *Result {
	return AnalyzeArch(bin, nil)
}

// AnalyzeArch is Analyze under an explicit ISA (nil means the default).
// Fixed-width ISAs restrict the candidate relation to aligned offsets —
// the decoder rejects everything else — which shrinks the fact base but
// leaves every rule unchanged.
func AnalyzeArch(bin *binfmt.Binary, arch isa.Arch) *Result {
	text := bin.Text()
	if text == nil {
		return &Result{}
	}
	n := len(text.Data)
	r := &Result{
		base:      text.VAddr,
		text:      text.Data,
		arch:      isa.Of(arch),
		cand:      make([]isa.Inst, n),
		strongCov: make([]bool, n),
		strong:    make([]bool, n),
		viable:    make([]bool, n),
		codeW:     make([]uint8, n),
		codeRule:  make([]RuleID, n),
		dataW:     make([]uint8, n),
		dataRule:  make([]RuleID, n),
		junkW:     make([]uint8, n),
		junkRule:  make([]RuleID, n),
	}
	r.extractFacts(bin)
	r.refuteDeadEnds(bin)
	r.propagateCode(bin)
	return r
}

// extractFacts materializes the ground relations: candidate decodes,
// the strong-reachability closure, data-access targets, table slots,
// and string runs.
func (r *Result) extractFacts(bin *binfmt.Binary) {
	text := bin.Text()
	n := len(r.text)

	// Candidate instruction starts: a decode attempt at every offset.
	for off := 0; off < n; off++ {
		in, err := r.arch.Decode(r.text[off:], r.base+uint32(off))
		if err != nil {
			continue
		}
		r.cand[off] = in
		r.stats.Candidates++
	}

	// Strong reachability: the same seed set the recursive traversal
	// trusts (entry, exports, aligned data-segment words pointing into
	// text), closed over fallthrough and direct-branch edges. Inference
	// recomputes it rather than importing the recursive result so the
	// three disassemblers stay independent votes.
	var work []uint32
	seed := func(a uint32) {
		if text.Contains(a) {
			work = append(work, a)
		}
	}
	if bin.Type == binfmt.Exec {
		seed(bin.Entry)
	}
	for _, e := range bin.Exports {
		seed(e.Addr)
	}
	for si := range bin.Segments {
		seg := &bin.Segments[si]
		if seg.Kind != binfmt.Data {
			continue
		}
		for off := 0; off+4 <= len(seg.Data); off += 4 {
			seed(binary.LittleEndian.Uint32(seg.Data[off:]))
		}
	}
	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		off := addr - r.base
		if r.strong[off] {
			continue
		}
		in := r.cand[off]
		if in.Op == isa.OpInvalid {
			continue
		}
		r.strong[off] = true
		r.stats.StrongStarts++
		for i := 0; i < r.arch.InstLen(in) && int(off)+i < n; i++ {
			r.strongCov[int(off)+i] = true
		}
		if in.HasFallthrough() {
			seed(addr + uint32(r.arch.InstLen(in)))
		}
		if t, ok := r.arch.TargetAddr(in, addr); ok {
			switch in.Op {
			case isa.OpLea, isa.OpLoadPC:
				// Address formation / data reference, not a code edge.
			default:
				seed(t)
			}
		}
	}

	markData := func(b int, w uint8, rule RuleID) {
		if b < 0 || b >= n || r.strongCov[b] || w <= r.dataW[b] {
			return
		}
		if r.dataW[b] == 0 {
			r.stats.FactBytes++
		}
		r.dataW[b], r.dataRule[b] = w, rule
	}

	// Data-access targets: a provably-reached loadpc names four bytes
	// that the program reads as data.
	for off := 0; off < n; off++ {
		if !r.strong[off] {
			continue
		}
		in := r.cand[off]
		if in.Op != isa.OpLoadPC {
			continue
		}
		if t, ok := r.arch.TargetAddr(in, r.base+uint32(off)); ok && text.Contains(t) {
			for i := 0; i < 4; i++ {
				markData(int(t-r.base)+i, WeightDataAccess, RuleDataAccess)
			}
		}
	}

	// Table slots: an aligned word inside text, outside strong coverage,
	// whose value is the address of a decodable candidate is a stored
	// code pointer — its four bytes are data, and its target is a code
	// entry (consumed as a seed by propagateCode).
	for off := 0; off+4 <= n; off += 1 {
		if (r.base+uint32(off))%4 != 0 {
			continue
		}
		if r.strongCov[off] || r.strongCov[off+1] || r.strongCov[off+2] || r.strongCov[off+3] {
			continue
		}
		v := binary.LittleEndian.Uint32(r.text[off:])
		if !text.Contains(v) {
			continue
		}
		toff := v - r.base
		if r.cand[toff].Op == isa.OpInvalid {
			continue
		}
		r.ptrTargets = append(r.ptrTargets, int32(toff))
		for i := 0; i < 4; i++ {
			markData(off+i, WeightTableSlot, RuleTableSlot)
		}
	}

	// String runs: maximal runs of printable bytes outside strong
	// coverage, length >= 5, or >= 4 with a NUL terminator (which joins
	// the run).
	for i := 0; i < n; {
		if r.strongCov[i] || !printable(r.text[i]) {
			i++
			continue
		}
		j := i
		for j < n && !r.strongCov[j] && printable(r.text[j]) {
			j++
		}
		end, runLen := j, j-i
		if runLen >= 4 && j < n && r.text[j] == 0 && !r.strongCov[j] {
			end++
		}
		if runLen >= 5 || end > j {
			for b := i; b < end; b++ {
				markData(b, WeightString, RuleStringRun)
			}
		}
		i = j
	}

	// Data coalescing: data objects sit adjacent in memory (a program
	// that stores one word and one string back to back rarely wedges
	// live code in between), so a short unevidenced gap whose both
	// neighbors inside the same non-strong run carry data evidence is
	// itself data. Bounded at maxDataGap bytes: anything wider could be
	// a small in-place code island and keeps the conservative
	// treatment. Code-believed candidates are additionally protected by
	// the Verdict threshold order (code belief always wins).
	for i := 0; i < n; {
		if r.strongCov[i] || r.dataW[i] == 0 {
			i++
			continue
		}
		j := i + 1 // i is evidenced; find the next evidenced byte in the run
		for j < n && !r.strongCov[j] && r.dataW[j] == 0 {
			j++
		}
		if j < n && !r.strongCov[j] && r.dataW[j] != 0 && j-i-1 <= maxDataGap {
			for b := i + 1; b < j; b++ {
				markData(b, WeightDataGap, RuleDataGap)
			}
		}
		i = j
	}

	// Overlap conflicts: a candidate whose span straddles bytes of a
	// provably-reached instruction without being one is a junk decode.
	for off := 0; off < n; off++ {
		in := r.cand[off]
		if in.Op == isa.OpInvalid || r.strong[off] {
			continue
		}
		for i := 0; i < r.arch.InstLen(in) && off+i < n; i++ {
			if r.strongCov[off+i] {
				r.junkW[off], r.junkRule[off] = WeightOverlap, RuleOverlap
				break
			}
		}
	}
}

func printable(b byte) bool { return b >= 0x20 && b <= 0x7E }

// flowSuccs appends the offsets candidate in (at off) requires to be
// viable code for itself to be viable: its fallthrough and its direct
// branch/call target. ok=false means a successor is structurally
// impossible (falls off the end of text, branches outside text, or
// forms a PC-relative address outside every segment) and the candidate
// is refuted outright.
func (r *Result) flowSuccs(bin *binfmt.Binary, in isa.Inst, off int, n int, dst []int) (_ []int, ok bool) {
	base := r.base
	if in.HasFallthrough() {
		ft := off + r.arch.InstLen(in)
		if ft >= n {
			return dst, false // execution would run off the end of text
		}
		dst = append(dst, ft)
	}
	if t, tok := r.arch.TargetAddr(in, base+uint32(off)); tok {
		switch in.Op {
		case isa.OpLea, isa.OpLoadPC:
			// A PC-relative address pointing into no segment at all is a
			// wild displacement — strong junk evidence. (One-past-end of a
			// segment is allowed: end pointers are legitimate.)
			hit := false
			for si := range bin.Segments {
				seg := &bin.Segments[si]
				if t >= seg.VAddr && t <= seg.End() {
					hit = true
					break
				}
			}
			if !hit {
				return dst, false
			}
		default:
			text := bin.Text()
			if !text.Contains(t) {
				return dst, false // direct branch out of text
			}
			dst = append(dst, int(t-base))
		}
	}
	return dst, true
}
