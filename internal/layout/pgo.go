package layout

import (
	"zipr/internal/core"
	"zipr/internal/ir"
)

// ProfileGuided is a placement strategy driven by execution profiles
// (the paper positions Zipr as "generally well-suited for program
// optimization"; this is that claim realized). Dollops whose referents
// belong to hot functions are packed bottom-up into a dense hot region,
// cold code is pushed top-down to the far end of free space, and pinned
// gaps are not reserved for in-place code — so the working set of a
// profile-conforming run collapses onto the hot pages and MaxRSS drops
// relative to the original interleaved layout.
type ProfileGuided struct {
	// Hot lists original-address ranges considered hot (typically the
	// spans of functions whose profile counters crossed a threshold).
	Hot []ir.Range

	// hotZoneEnd tracks the high-water mark of hot placements so later
	// chunks (whose hints are rewritten addresses, not original ones)
	// stay in their zone.
	hotZoneEnd uint32
}

var _ core.Placer = (*ProfileGuided)(nil)

// Name implements core.Placer.
func (*ProfileGuided) Name() string { return "profile-guided" }

// InlinePins implements core.Placer: in-place code would keep the
// original hot/cold interleaving, so PGO re-places everything.
func (*ProfileGuided) InlinePins() bool { return false }

// isHot classifies placed code: code with a known original address is
// hot iff a profiled range covers it; synthesized code (origin 0, e.g.
// check thunks and dispatch blobs) inherits the zone of its referent so
// helpers used by hot code stay hot.
func (p *ProfileGuided) isHot(hint, origin uint32) bool {
	if origin != 0 {
		for _, r := range p.Hot {
			if r.Contains(origin) {
				return true
			}
		}
		return false
	}
	return hint != 0 && hint <= p.hotZoneEnd
}

// Choose implements core.Placer: hot requests take the lowest fitting
// block bottom-up; cold requests take the highest fitting block
// top-down. Both are single O(log n) allocator queries.
func (p *ProfileGuided) Choose(space core.Space, size int, hint, origin uint32) (uint32, bool) {
	if p.isHot(hint, origin) {
		b, ok := space.LowestFit(size)
		if !ok {
			return 0, false
		}
		if end := b.Start + uint32(size); end > p.hotZoneEnd {
			p.hotZoneEnd = end
		}
		return b.Start, true
	}
	b, ok := space.HighestFit(size)
	if !ok {
		return 0, false
	}
	return b.End - uint32(size), true
}
